//! Per-invocation and aggregated measurement results.

use ignite_core::ReplayStats;
use ignite_uarch::stats::mpki;

use crate::topdown::TopDown;

/// Memory-bandwidth breakdown (paper Fig. 10 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Instruction bytes from DRAM that served (or will serve) the
    /// committed path.
    pub useful_instruction_bytes: u64,
    /// Instruction bytes from DRAM fetched on the wrong path.
    pub useless_instruction_bytes: u64,
    /// Record metadata streamed to memory (Ignite + Jukebox).
    pub record_metadata_bytes: u64,
    /// Replay metadata streamed from memory (Ignite + Jukebox).
    pub replay_metadata_bytes: u64,
}

impl Traffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.useful_instruction_bytes
            + self.useless_instruction_bytes
            + self.record_metadata_bytes
            + self.replay_metadata_bytes
    }

    /// Merges another breakdown.
    pub fn merge(&mut self, other: &Traffic) {
        self.useful_instruction_bytes += other.useful_instruction_bytes;
        self.useless_instruction_bytes += other.useless_instruction_bytes;
        self.record_metadata_bytes += other.record_metadata_bytes;
        self.replay_metadata_bytes += other.replay_metadata_bytes;
    }
}

/// Ignite restore accuracy, one structure's worth (paper Fig. 9c rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreAccuracy {
    /// Misses covered by restoration (restored state that was used).
    pub covered: u64,
    /// Misses that still occurred.
    pub uncovered: u64,
    /// Restored state that was never used (or actively harmful).
    pub overpredicted: u64,
}

impl RestoreAccuracy {
    /// Fraction covered, of all classified events.
    pub fn covered_fraction(&self) -> f64 {
        let total = self.covered + self.uncovered + self.overpredicted;
        if total == 0 {
            0.0
        } else {
            self.covered as f64 / total as f64
        }
    }

    /// Fraction overpredicted, of all classified events.
    pub fn overpredicted_fraction(&self) -> f64 {
        let total = self.covered + self.uncovered + self.overpredicted;
        if total == 0 {
            0.0
        } else {
            self.overpredicted as f64 / total as f64
        }
    }

    /// Merges counts.
    pub fn merge(&mut self, other: &RestoreAccuracy) {
        self.covered += other.covered;
        self.uncovered += other.uncovered;
        self.overpredicted += other.overpredicted;
    }
}

/// Everything measured over one (or several averaged) invocation(s).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvocationResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Top-Down cycle breakdown.
    pub topdown: TopDown,
    /// L1-I demand misses.
    pub l1i_misses: u64,
    /// BTB misses on taken branches plus stale-target resteers.
    pub btb_misses: u64,
    /// Conditional branch mispredictions.
    pub cbp_mispredictions: u64,
    /// Mispredictions on a branch's first execution this invocation.
    pub initial_mispredictions: u64,
    /// Mispredictions on later executions.
    pub subsequent_mispredictions: u64,
    /// Conditional branches executed.
    pub conditional_branches: u64,
    /// Front-end resteers (pipeline flushes).
    pub resteers: u64,
    /// Integer cycles the fetch stage stalled on the L1-I/ITLB — the
    /// exact provenance of the (fractional) FetchBound Top-Down bucket.
    /// `fetch_stall_cycles + resteer_penalty_cycles + execution` tiles
    /// `cycles` exactly, which the scope attribution invariant relies
    /// on.
    pub fetch_stall_cycles: u64,
    /// Integer cycles paid as resteer penalties (the BadSpeculation
    /// bucket's exact provenance).
    pub resteer_penalty_cycles: u64,
    /// ITLB page walks.
    pub itlb_walks: u64,
    /// Memory traffic breakdown.
    pub traffic: Traffic,
    /// Ignite restore accuracy for the L2 instruction prefetches.
    pub accuracy_l2: RestoreAccuracy,
    /// Ignite restore accuracy for the BTB.
    pub accuracy_btb: RestoreAccuracy,
    /// Ignite restore accuracy for the CBP (BIM initialization).
    pub accuracy_cbp: RestoreAccuracy,
    /// Ignite replay statistics, including the degradation counters
    /// (`decode_errors`, `entries_dropped`, `stale_restored`,
    /// `watchdog_abandons`) — zero when Ignite is not configured.
    pub replay: ReplayStats,
    /// Replay records that existed but were not consumed before the
    /// invocation ended (throttling or a short invocation cut replay off).
    pub replay_unfinished: u64,
}

impl InvocationResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// L1-I misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        mpki(self.l1i_misses, self.instructions)
    }

    /// BTB misses per kilo-instruction.
    pub fn btb_mpki(&self) -> f64 {
        mpki(self.btb_misses, self.instructions)
    }

    /// Conditional mispredictions per kilo-instruction.
    pub fn cbp_mpki(&self) -> f64 {
        mpki(self.cbp_mispredictions, self.instructions)
    }

    /// Combined BPU MPKI (BTB + CBP), as plotted in Figs. 3, 4, 12.
    pub fn bpu_mpki(&self) -> f64 {
        self.btb_mpki() + self.cbp_mpki()
    }

    /// Initial mispredictions per kilo-instruction (Figs. 6, 9b).
    pub fn initial_mpki(&self) -> f64 {
        mpki(self.initial_mispredictions, self.instructions)
    }

    /// Subsequent mispredictions per kilo-instruction.
    pub fn subsequent_mpki(&self) -> f64 {
        mpki(self.subsequent_mispredictions, self.instructions)
    }

    /// Integer front-end penalty cycles: fetch stalls plus resteer
    /// penalties. Always `<= cycles`; the remainder is steady-state
    /// retire/back-end execution.
    pub fn front_end_stall_cycles(&self) -> u64 {
        self.fetch_stall_cycles + self.resteer_penalty_cycles
    }

    /// Sums another result into this one (for averaging across
    /// invocations).
    pub fn merge(&mut self, other: &InvocationResult) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.topdown.merge(&other.topdown);
        self.l1i_misses += other.l1i_misses;
        self.btb_misses += other.btb_misses;
        self.cbp_mispredictions += other.cbp_mispredictions;
        self.initial_mispredictions += other.initial_mispredictions;
        self.subsequent_mispredictions += other.subsequent_mispredictions;
        self.conditional_branches += other.conditional_branches;
        self.resteers += other.resteers;
        self.itlb_walks += other.itlb_walks;
        self.fetch_stall_cycles += other.fetch_stall_cycles;
        self.resteer_penalty_cycles += other.resteer_penalty_cycles;
        self.traffic.merge(&other.traffic);
        self.accuracy_l2.merge(&other.accuracy_l2);
        self.accuracy_btb.merge(&other.accuracy_btb);
        self.accuracy_cbp.merge(&other.accuracy_cbp);
        self.replay.merge(&other.replay);
        self.replay_unfinished += other.replay_unfinished;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvocationResult {
        InvocationResult {
            instructions: 10_000,
            cycles: 20_000,
            l1i_misses: 370,
            btb_misses: 130,
            cbp_mispredictions: 210,
            ..InvocationResult::default()
        }
    }

    #[test]
    fn derived_rates() {
        let r = sample();
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.l1i_mpki() - 37.0).abs() < 1e-12);
        assert!((r.btb_mpki() - 13.0).abs() < 1e-12);
        assert!((r.cbp_mpki() - 21.0).abs() < 1e-12);
        assert!((r.bpu_mpki() - 34.0).abs() < 1e-12);
    }

    #[test]
    fn zero_instructions_safe() {
        let r = InvocationResult::default();
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.l1i_mpki(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.instructions, 20_000);
        assert_eq!(a.l1i_misses, 740);
        // Rates are invariant under merging identical results.
        assert!((a.l1i_mpki() - 37.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_total() {
        let t = Traffic {
            useful_instruction_bytes: 100,
            useless_instruction_bytes: 50,
            record_metadata_bytes: 10,
            replay_metadata_bytes: 20,
        };
        assert_eq!(t.total(), 180);
    }

    #[test]
    fn accuracy_fractions() {
        let a = RestoreAccuracy { covered: 90, uncovered: 6, overpredicted: 4 };
        assert!((a.covered_fraction() - 0.9).abs() < 1e-12);
        assert!((a.overpredicted_fraction() - 0.04).abs() < 1e-12);
        assert_eq!(RestoreAccuracy::default().covered_fraction(), 0.0);
    }
}
