//! The simulated machine: microarchitectural structures plus the selected
//! prefetching/restoration mechanisms.

use ignite_core::Ignite;
use ignite_prefetch::boomerang::Boomerang;
use ignite_prefetch::branch_index::{BranchIndex, PredecodedBranch};
use ignite_prefetch::confluence::Confluence;
use ignite_prefetch::jukebox::Jukebox;
use ignite_prefetch::next_line::NextLine;
use ignite_uarch::btb::Btb;
use ignite_uarch::cbp::Cbp;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::ittage::Ittage;
use ignite_uarch::ras::Ras;
use ignite_uarch::rng::SplitMix64;
use ignite_uarch::tlb::Itlb;
use ignite_uarch::{Cycle, UarchConfig};
use ignite_workloads::cfg::{CodeImage, Terminator};
use ignite_workloads::suite::SuiteFunction;

use crate::config::FrontEndConfig;

/// A workload bound to the simulator: the code image plus the predecode
/// oracle built from it.
#[derive(Debug, Clone)]
pub struct PreparedFunction {
    /// The synthetic code image.
    pub image: CodeImage,
    /// Line-granular predecode index (Boomerang/Confluence BTB fill).
    pub branch_index: BranchIndex,
    /// Container id (keys per-container metadata).
    pub container: u64,
    /// Dynamic instructions per invocation.
    pub invocation_instrs: u64,
    /// Data working set for the back-end stall model, in cache lines.
    pub data_ws_lines: u64,
    /// Per-branch-site divergence probability between invocations
    /// (see [`ignite_workloads::trace::DEFAULT_NOISE`]).
    pub noise: f64,
}

impl PreparedFunction {
    /// Prepares a suite function for simulation.
    pub fn from_suite(f: &SuiteFunction, container: u64) -> Self {
        PreparedFunction {
            branch_index: build_branch_index(&f.image),
            image: f.image.clone(),
            container,
            invocation_instrs: f.profile.invocation_instrs,
            data_ws_lines: f.profile.data_ws_lines,
            noise: ignite_workloads::trace::DEFAULT_NOISE,
        }
    }

    /// Prepares an arbitrary image (custom workloads).
    pub fn from_image(image: CodeImage, container: u64, invocation_instrs: u64) -> Self {
        PreparedFunction {
            branch_index: build_branch_index(&image),
            image,
            container,
            invocation_instrs,
            data_ws_lines: 1024,
            noise: ignite_workloads::trace::DEFAULT_NOISE,
        }
    }
}

/// Builds the predecode oracle for an image: every static branch, with the
/// statically-knowable target (direct branches and calls only).
pub fn build_branch_index(image: &CodeImage) -> BranchIndex {
    let branches = image.blocks().iter().map(|b| {
        let static_target = match &b.term {
            Terminator::Cond { target, .. } | Terminator::Jump { target } => {
                Some(image.block(*target).start)
            }
            Terminator::Call { callee } => {
                let entry = image.functions()[*callee as usize].first_block;
                Some(image.block(entry).start)
            }
            Terminator::Ret | Terminator::Indirect { .. } => None,
        };
        PredecodedBranch { pc: b.branch_pc(), kind: b.term.branch_kind(), static_target }
    });
    BranchIndex::from_branches(branches)
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Hardware parameters (paper Table 2).
    pub uarch: UarchConfig,
    /// Selected front-end configuration.
    pub fe: FrontEndConfig,
    /// Instruction memory hierarchy.
    pub hierarchy: Hierarchy,
    /// Instruction TLB.
    pub itlb: Itlb,
    /// Branch target buffer.
    pub btb: Btb,
    /// Conditional branch predictor (bimodal + TAGE).
    pub cbp: Cbp,
    /// Return address stack.
    pub ras: Ras,
    /// Optional indirect target predictor.
    pub ittage: Option<Ittage>,
    /// Always-on next-line prefetcher (§5.3).
    pub nl: NextLine,
    /// Boomerang BTB prefiller, if selected.
    pub boomerang: Option<Boomerang>,
    /// Jukebox record/replay, if selected.
    pub jukebox: Option<Jukebox>,
    /// Confluence temporal streaming, if selected.
    pub confluence: Option<Confluence>,
    /// Ignite record/replay restoration, if selected.
    pub ignite: Option<Ignite>,
    /// Global clock (persists across invocations).
    pub now: Cycle,
    /// Lifetime count of [`Machine::context_switch`] calls (observability:
    /// the cluster's dispatch path reads it into context-switch events).
    pub context_switches: u64,
    flush_rng: SplitMix64,
}

impl Machine {
    /// Builds a cold machine for a front-end configuration.
    pub fn new(uarch: &UarchConfig, fe: &FrontEndConfig) -> Self {
        Machine {
            uarch: *uarch,
            fe: fe.clone(),
            hierarchy: Hierarchy::new(&uarch.hierarchy),
            itlb: Itlb::new(&uarch.itlb),
            btb: Btb::new(&uarch.btb),
            cbp: Cbp::new(&uarch.cbp),
            ras: Ras::new(&uarch.ras),
            ittage: uarch.indirect_predictor.as_ref().map(Ittage::new),
            nl: NextLine::new(2),
            boomerang: fe.select.boomerang.map(Boomerang::new),
            jukebox: fe.select.jukebox.map(Jukebox::new),
            confluence: fe.select.confluence.map(Confluence::new),
            ignite: fe.select.ignite.map(Ignite::new),
            now: 0,
            context_switches: 0,
            flush_rng: SplitMix64::new(0xF1A5_60D5),
        }
    }

    /// Applies the configured cross-invocation state policy: the lukewarm
    /// protocol flushes caches, ITLB, BTB and TAGE and overwrites the
    /// bimodal tables with random state (§5.3); warm-state studies preserve
    /// selected structures.
    pub fn between_invocations(&mut self) {
        let p = self.fe.policy;
        if !p.warm_caches {
            self.hierarchy.flush_all();
        }
        if !p.warm_itlb {
            self.itlb.flush();
        }
        if !p.warm_btb {
            self.btb.flush();
        }
        // The RAS is architectural per-context state; a context switch
        // always empties it (it refills within a few calls).
        self.ras.flush();
        if !p.warm_tage {
            if let Some(it) = &mut self.ittage {
                it.flush();
            }
        }
        if !p.warm_tage {
            self.cbp.flush_tagged();
        }
        if !p.warm_bim {
            self.cbp.bimodal_mut().randomize(&mut self.flush_rng);
        }
        if let Some(b) = &mut self.boomerang {
            b.reset();
        }
        // Confluence keeps its metadata; only stream state resets.
        if let Some(c) = &mut self.confluence {
            c.end_invocation();
        }
    }

    /// Prepares the machine for an invocation of a *different* context on
    /// the same core, without flushing any microarchitectural state.
    ///
    /// This is the cluster scheduler's dispatch path: caches, BTB and
    /// predictors keep whatever the previous invocations left behind, so
    /// lukewarmness emerges from interleaving rather than from a scripted
    /// flush. Only architectural per-context state changes hands — the RAS
    /// empties (it refills within a few calls), and per-invocation stream
    /// state in Boomerang/Confluence resets exactly as
    /// [`Machine::between_invocations`] does.
    pub fn context_switch(&mut self) {
        self.context_switches += 1;
        self.ras.flush();
        if let Some(b) = &mut self.boomerang {
            b.reset();
        }
        if let Some(c) = &mut self.confluence {
            c.end_invocation();
        }
    }

    /// Resets all measurement statistics (start of a measured invocation).
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        self.btb.reset_stats();
        self.cbp.reset_stats();
        self.itlb.reset_stats();
        self.nl.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_uarch::addr::Addr;
    use ignite_workloads::suite::Suite;

    #[test]
    fn prepared_function_indexes_every_block() {
        let suite = Suite::paper_suite_scaled(0.02);
        let f = PreparedFunction::from_suite(&suite.functions()[0], 0);
        assert_eq!(f.branch_index.len(), f.image.static_branches());
    }

    #[test]
    fn branch_index_targets_match_cfg() {
        let suite = Suite::paper_suite_scaled(0.02);
        let f = PreparedFunction::from_suite(&suite.functions()[0], 0);
        for block in f.image.blocks() {
            let b = f.branch_index.branch_at(block.branch_pc()).expect("indexed");
            match &block.term {
                Terminator::Ret | Terminator::Indirect { .. } => {
                    assert!(b.static_target.is_none());
                }
                _ => assert!(b.static_target.is_some()),
            }
        }
    }

    #[test]
    fn machine_constructs_selected_mechanisms() {
        let uarch = UarchConfig::tiny_for_tests();
        let m = Machine::new(&uarch, &FrontEndConfig::boomerang_jukebox());
        assert!(m.boomerang.is_some());
        assert!(m.jukebox.is_some());
        assert!(m.confluence.is_none());
        assert!(m.ignite.is_none());
    }

    #[test]
    fn lukewarm_flush_clears_structures() {
        let uarch = UarchConfig::tiny_for_tests();
        let mut m = Machine::new(&uarch, &FrontEndConfig::nl());
        m.hierarchy.fetch(Addr::new(0x1000), 0);
        m.btb.insert(
            ignite_uarch::btb::BtbEntry::new(
                Addr::new(0x10),
                Addr::new(0x20),
                ignite_uarch::btb::BranchKind::Call,
            ),
            false,
        );
        m.between_invocations();
        assert!(!m.hierarchy.probe_l1i(Addr::new(0x1000)));
        assert!(m.btb.probe(Addr::new(0x10)).is_none());
    }

    #[test]
    fn back_to_back_policy_preserves_state() {
        let uarch = UarchConfig::tiny_for_tests();
        let fe =
            FrontEndConfig::nl().with_policy("warm", crate::config::StatePolicy::back_to_back());
        let mut m = Machine::new(&uarch, &fe);
        m.hierarchy.fetch(Addr::new(0x1000), 0);
        m.between_invocations();
        assert!(m.hierarchy.probe_l1i(Addr::new(0x1000)));
    }

    #[test]
    fn bim_randomization_is_deterministic_per_machine() {
        let uarch = UarchConfig::tiny_for_tests();
        let mut a = Machine::new(&uarch, &FrontEndConfig::nl());
        let mut b = Machine::new(&uarch, &FrontEndConfig::nl());
        a.between_invocations();
        b.between_invocations();
        // Same flush RNG seed => same randomized BIM state.
        for i in 0..64u64 {
            let pc = Addr::new(0x100 + i * 4);
            assert_eq!(a.cbp.bimodal().predict(pc), b.cbp.bimodal().predict(pc));
        }
    }
}
