//! The cycle-approximate decoupled front-end simulation loop.
//!
//! One call to [`run_invocation`] models one serverless function invocation
//! over its dynamic basic-block trace. The model follows the structure of a
//! decoupled front-end:
//!
//! * The BPU (BTB + CBP + ideal RAS) is consulted once per block, at the
//!   time the block's successor would enter the FTQ (run-ahead when the
//!   recent transitions predicted correctly, demand-time right after a
//!   resteer). The FTQ extends by up to `bpu_blocks_per_cycle` blocks per
//!   elapsed cycle, up to the FTQ capacity, and *stalls* at the first
//!   transition the BPU cannot predict — at which point the real front-end
//!   would run down the wrong path, modelled as a burst of wrong-path line
//!   prefetches.
//! * FDP (if enabled) prefetches the lines of every block entering the FTQ;
//!   the hierarchy's in-flight tracking credits partial latency overlap.
//! * At commit, predictors train, taken branches missing from the BTB are
//!   inserted (the event Ignite records), and mispredicted transitions pay
//!   a resteer penalty classified as bad speculation.
//! * The back-end is abstract: retire-width throughput plus a cold/warm
//!   data-stall model (DESIGN.md §5).

use std::collections::VecDeque;

use ignite_obs::{Event, EventKind, EventSink, NullSink, Phase, Track};
use ignite_uarch::addr::{lines_spanned, LINE_BYTES};
use ignite_uarch::btb::{BranchKind, BtbEntry};
use ignite_uarch::cache::FillKind;
use ignite_uarch::cbp::CbpPrediction;
use ignite_uarch::hierarchy::Level;
use ignite_uarch::Cycle;
use ignite_workloads::trace::{BlockExec, TraceWalker};

use crate::machine::{Machine, PreparedFunction};
use crate::metrics::{InvocationResult, RestoreAccuracy};
use crate::topdown::Category;

/// How the BPU's prediction of a block's transition resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Predicted next fetch address matches the actual path.
    Correct,
    /// A taken branch was not identified (BTB miss) — front-end resteer.
    BtbMissTaken,
    /// Conditional direction mispredicted.
    CbpWrongDirection,
    /// Stale BTB target (indirect branch changed target).
    WrongTarget,
}

#[derive(Debug, Clone, Copy)]
struct Eval {
    outcome: Outcome,
    cbp_pred: Option<CbpPrediction>,
    btb_hit: bool,
}

#[derive(Debug, Clone)]
struct Pending {
    block: BlockExec,
    eval: Option<Eval>,
}

/// Externally supplied per-invocation context.
///
/// The default protocol ([`run_invocation`]) derives everything from the
/// machine's [`StatePolicy`](crate::config::StatePolicy); schedulers that
/// own cross-invocation state (the cluster simulator) use
/// [`run_invocation_ctx`] to feed in what the policy cannot know — how cold
/// this invocation's *data* working set is after other functions ran on the
/// same core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationCtx {
    /// Fraction of the data working set that must be re-fetched cold
    /// (0.0 = back-to-back warm, 1.0 = fully evicted). Clamped to [0, 1].
    pub data_cold_fraction: f64,
    /// Run with Ignite detached for this invocation only: no record, no
    /// replay, no metadata traffic — the machine behaves as if Ignite
    /// were not configured, then gets it back untouched. Used by the
    /// chaos layer's circuit breaker to quarantine a function whose
    /// replay metadata faults repeatedly (degraded cold execution).
    pub bypass_ignite: bool,
}

impl Default for InvocationCtx {
    fn default() -> Self {
        InvocationCtx { data_cold_fraction: 1.0, bypass_ignite: false }
    }
}

/// Runs one invocation and returns its measurements.
///
/// `invocation` seeds the trace walker; consecutive invocations of the same
/// function share most control flow (the commonality Ignite exploits).
pub fn run_invocation(m: &mut Machine, f: &PreparedFunction, invocation: u64) -> InvocationResult {
    let data_cold_fraction = if m.fe.policy.warm_data { 0.0 } else { 1.0 };
    run_invocation_ctx(m, f, invocation, InvocationCtx { data_cold_fraction, bypass_ignite: false })
}

/// Like [`run_invocation`], with caller-owned warm/cold context.
///
/// Front-end state (caches, BTB, predictors) is *not* touched here: it is
/// whatever the machine accumulated, so a scheduler interleaving many
/// functions on one core gets emergent lukewarmness for free. Only the
/// abstract back-end data-stall model needs the explicit cold fraction.
pub fn run_invocation_ctx(
    m: &mut Machine,
    f: &PreparedFunction,
    invocation: u64,
    ctx: InvocationCtx,
) -> InvocationResult {
    run_invocation_obs(m, f, invocation, ctx, &mut NullSink, Track::Core(0), 0)
}

/// Like [`run_invocation_ctx`], emitting observability events into `sink`.
///
/// Events carry timestamps in the *caller's* clock: `ts_offset` is added
/// to every machine-local cycle stamp (the cluster passes
/// `dispatch_time - machine.now`, aligning per-core machine clocks to the
/// cluster clock). With [`NullSink`] every emission site is guarded by an
/// inlined constant `false` and compiles out — [`run_invocation_ctx`] is
/// exactly this function monomorphized that way, so results are
/// bit-identical whether or not observability is wired up.
///
/// # Memoizability contract
///
/// This function is a pure function of `(machine state, f, invocation,
/// ctx)`: it reads no clocks, RNGs, or globals, and the events it emits
/// are a deterministic transcript of the same computation, stamped
/// machine-locally (plus the constant `ts_offset`). The cluster layer's
/// invocation memoization (`ignite-cluster`'s `memo` module) relies on
/// exactly this: two calls with identical machine history, function,
/// per-function invocation count, and context produce an identical
/// `InvocationResult`, identical machine mutations, and an identical
/// event sequence, so a cached result plus replayed events can stand in
/// for the call. Any future nondeterminism added here (wall-clock,
/// unseeded randomness, ambient config reads) must be folded into
/// `ignite_cluster::memo::dispatch_digest` or it will silently break
/// that substitution.
pub fn run_invocation_obs<S: EventSink>(
    m: &mut Machine,
    f: &PreparedFunction,
    invocation: u64,
    ctx: InvocationCtx,
    sink: &mut S,
    track: Track,
    ts_offset: u64,
) -> InvocationResult {
    // Circuit-breaker quarantine: detach Ignite for the whole invocation
    // (before the `has_mechanisms` probe below) and re-attach it on every
    // return path. Its internal state is untouched — the invocation simply
    // never happened from Ignite's point of view.
    let stashed_ignite = if ctx.bypass_ignite { m.ignite.take() } else { None };
    let mut res = InvocationResult::default();
    let start_cycle = m.now;
    let ideal = m.fe.select.ideal;
    let fdp = m.fe.select.fdp && !ideal;
    let base_cpi = (1.0 / m.uarch.backend.retire_width as f64).max(m.uarch.backend.ilp_cpi);
    let ftq_cap = m.uarch.frontend.ftq_entries;
    let bpu_rate = m.uarch.frontend.bpu_blocks_per_cycle as f64;

    m.reset_stats();
    m.cbp.begin_invocation();
    if let Some(jb) = &mut m.jukebox {
        jb.begin_invocation(f.container);
    }
    if let Some(ig) = &mut m.ignite {
        ig.begin_invocation(f.container);
    }

    // Whether a live replay session's drain event is still owed; always
    // false on the NullSink path, so the per-mech-step check below folds
    // away with the rest of the instrumentation.
    let mut replay_live = false;
    if sink.enabled() {
        if let Some(ig) = &m.ignite {
            if ig.is_recording() {
                sink.record(Event {
                    ts: ts_offset + m.now,
                    dur: 0,
                    track,
                    kind: EventKind::RecordBegin { container: f.container },
                });
            }
            if ig.replay_pending() {
                replay_live = true;
                sink.record(Event {
                    ts: ts_offset + m.now,
                    dur: 0,
                    track,
                    kind: EventKind::ReplayBegin {
                        container: f.container,
                        entries: ig.replay_total_entries(),
                    },
                });
            }
        }
    }

    let mut walker = TraceWalker::with_noise(&f.image, invocation, f.invocation_instrs, f.noise);
    let mut buf: VecDeque<Pending> = VecDeque::new();
    let mut walker_done = false;
    // Number of leading `buf` entries considered "in the FTQ" (their lines
    // prefetched); the first is the block being fetched.
    let mut ftq_len: usize = 1;
    // The FTQ extension hit an unpredictable transition and is stalled
    // until that block commits and the pipeline resteers.
    let mut blocked = false;
    let mut bpu_budget: f64 = 2.0;
    // Fractional-cycle accumulator: `m.now` is integral.
    let mut cycle_carry: f64 = 0.0;
    let mut mech_clock = m.now;
    let has_mechanisms = m.jukebox.is_some() || m.ignite.is_some() || m.confluence.is_some();
    // Cold-data pool for the back-end stall model.
    let mut data_pool: f64 = f.data_ws_lines as f64 * ctx.data_cold_fraction.clamp(0.0, 1.0);

    loop {
        // Keep the lookahead buffer stocked.
        while !walker_done && buf.len() < ftq_cap + 2 {
            match walker.next() {
                Some(b) => buf.push_back(Pending { block: b, eval: None }),
                None => walker_done = true,
            }
        }
        let Some(front) = buf.front() else { break };
        let _ = front;

        // Paced mechanisms (Ignite replay, Jukebox replay, Confluence
        // streams) catch up to the global clock.
        if has_mechanisms {
            while mech_clock <= m.now {
                step_mechanisms(m, f, mech_clock, &mut res);
                if replay_live {
                    if let Some(ig) = &m.ignite {
                        if !ig.replay_pending() {
                            replay_live = false;
                            sink.record(Event {
                                ts: ts_offset + mech_clock,
                                dur: 0,
                                track,
                                kind: EventKind::ReplayEnd {
                                    container: f.container,
                                    restored: ig.replay_restored(),
                                },
                            });
                        }
                    }
                }
                mech_clock += 1;
            }
        }

        // Demand-time evaluation when the FTQ holds only this block (right
        // after a resteer or at invocation start).
        if buf[0].eval.is_none() {
            let eval = evaluate(m, f, &buf[0].block, 0);
            buf[0].eval = Some(eval);
        }
        let Pending { block, eval } = buf.pop_front().expect("non-empty");
        let eval = eval.expect("evaluated above");
        let block_start_cycle = m.now;

        // ---- Fetch ----
        if !ideal {
            let mut t = m.now;
            let mut stall: Cycle = 0;
            let tlb_extra = m.itlb.translate(block.start);
            stall += tlb_extra;
            t += tlb_extra;
            for line in lines_spanned(block.start, u64::from(block.bytes)) {
                let r = m.hierarchy.fetch(line, t);
                let l1i_lat = m.uarch.hierarchy.l1i_latency;
                // A fetch that has to wait out an in-flight fill is a miss
                // (an MSHR hit): the prefetch was not timely.
                let effective_miss = r.served_by != Level::L1I || r.ready_at > t + l1i_lat;
                if effective_miss {
                    res.l1i_misses += 1;
                    if let Some(c) = &mut m.confluence {
                        c.on_miss(line, t);
                    }
                    if matches!(r.served_by, Level::Llc | Level::Memory) {
                        res.accuracy_l2.uncovered += 1;
                    }
                }
                if effective_miss || r.hit_prefetched {
                    for (pf_line, pf) in m.nl.trigger_observed(line, t, &mut m.hierarchy) {
                        if let Some(jb) = &mut m.jukebox {
                            jb.observe_fill(pf_line, pf.served_by);
                        }
                    }
                }
                if let Some(jb) = &mut m.jukebox {
                    jb.observe_fill(line, r.served_by);
                }
                if let Some(c) = &mut m.confluence {
                    c.observe_access(line, r.served_by != Level::L1I);
                }
                if r.ready_at > t + l1i_lat {
                    stall += r.ready_at - (t + l1i_lat);
                }
                t = t.max(r.ready_at);
            }
            m.now += stall;
            res.fetch_stall_cycles += stall;
            res.topdown.add(Category::FetchBound, stall as f64);
        }

        // ---- Commit ----
        res.instructions += u64::from(block.instrs);
        let br = block.branch;
        if br.kind == BranchKind::Conditional {
            res.conditional_branches += 1;
            match &eval.cbp_pred {
                Some(pred) => m.cbp.resolve(br.pc, br.taken, br.target, pred),
                None => m.cbp.resolve_uncounted(br.pc, br.taken, br.target),
            }
        } else if br.taken {
            m.cbp.note_taken_branch(br.pc, br.target);
        }
        // BTB allocation on taken commit (the event Ignite records), and
        // target update on stale indirect targets.
        if !ideal && br.taken && (!eval.btb_hit || eval.outcome == Outcome::WrongTarget) {
            m.btb.insert(BtbEntry::new(br.pc, br.target, br.kind), false);
        }
        if let Some(ig) = &mut m.ignite {
            ig.observe_btb_insertions(&mut m.btb);
        }

        // Resteer handling.
        match eval.outcome {
            Outcome::Correct => {}
            outcome => {
                let penalty = match (outcome, br.kind) {
                    // Direct jumps/calls discovered at decode resteer early.
                    (Outcome::BtbMissTaken, BranchKind::Unconditional | BranchKind::Call) => {
                        m.uarch.frontend.decode_resteer_penalty
                    }
                    _ => m.uarch.frontend.exec_resteer_penalty,
                };
                if matches!(outcome, Outcome::BtbMissTaken | Outcome::WrongTarget) {
                    res.btb_misses += 1;
                }
                res.resteers += 1;
                m.now += penalty;
                res.resteer_penalty_cycles += penalty;
                res.topdown.add(Category::BadSpeculation, penalty as f64);
                if let Some(c) = &mut m.confluence {
                    c.on_resteer();
                }
                blocked = false;
                // The FTQ (and everything younger) is squashed; prediction
                // restarts at the correct target.
                ftq_len = 1;
            }
        }

        // ---- Retire + back-end ----
        let mut block_cycles = f64::from(block.instrs) * base_cpi;
        res.topdown.add(Category::Retiring, block_cycles);
        let loads = f64::from(block.instrs) * m.uarch.backend.load_fraction;
        let cold = (loads * m.uarch.backend.cold_touch_rate).min(data_pool);
        data_pool -= cold;
        let data_stall = cold * m.uarch.backend.cold_miss_penalty as f64
            + (loads - cold)
                * m.uarch.backend.warm_miss_rate
                * m.uarch.backend.data_miss_penalty as f64;
        res.topdown.add(Category::BackendBound, data_stall);
        block_cycles += data_stall;
        cycle_carry += block_cycles;
        let whole = cycle_carry.floor();
        m.now += whole as Cycle;
        cycle_carry -= whole;

        // ---- FTQ maintenance ----
        if ftq_len > 1 {
            ftq_len -= 1;
        }
        if fdp {
            let elapsed = (m.now - block_start_cycle).max(1);
            bpu_budget = (bpu_budget + elapsed as f64 * bpu_rate).min(ftq_cap as f64 * 2.0);
            while bpu_budget >= 1.0 && ftq_len < ftq_cap && !blocked && ftq_len < buf.len() {
                bpu_budget -= 1.0;
                // Evaluate the transition out of the newest FTQ block.
                if buf[ftq_len - 1].eval.is_none() {
                    let eval = evaluate(m, f, &buf[ftq_len - 1].block, ftq_len - 1);
                    buf[ftq_len - 1].eval = Some(eval);
                }
                if buf[ftq_len - 1].eval.expect("set above").outcome == Outcome::Correct {
                    // The successor enters the FTQ: FDP prefetches it.
                    let nb = buf[ftq_len].block;
                    for line in lines_spanned(nb.start, u64::from(nb.bytes)) {
                        m.hierarchy.prefetch_l1i(line, m.now, FillKind::Prefetch);
                    }
                    ftq_len += 1;
                } else {
                    blocked = true;
                }
            }
        }
    }

    // ---- Wrap up ----
    res.traffic.useless_instruction_bytes = m.hierarchy.untouched_fill_bytes();
    res.cycles = m.now - start_cycle;
    let cbp = m.cbp.stats();
    res.cbp_mispredictions = cbp.mispredictions;
    res.initial_mispredictions = cbp.initial_mispredictions;
    res.subsequent_mispredictions = cbp.subsequent_mispredictions;
    res.itlb_walks = m.itlb.walks();

    // Ignite restore accuracy (Fig. 9c).
    let btb_stats = *m.btb.stats();
    res.accuracy_btb = RestoreAccuracy {
        covered: btb_stats.restored_used,
        uncovered: res.btb_misses,
        overpredicted: btb_stats.restored_evicted_untouched + m.btb.restored_untouched(),
    };
    res.accuracy_cbp = RestoreAccuracy {
        covered: cbp.ignite_covered_initials,
        uncovered: res.cbp_mispredictions.saturating_sub(cbp.ignite_induced_mispredictions),
        overpredicted: cbp.ignite_induced_mispredictions,
    };
    let l2_stats = *m.hierarchy.l2().stats();
    let l2_over = l2_stats.unused_restore_evictions + m.hierarchy.l2().unused_restored_resident();

    if let Some(jb) = &mut m.jukebox {
        res.traffic.record_metadata_bytes += jb.record_bytes();
        jb.end_invocation(f.container);
    }
    if let Some(ig) = &mut m.ignite {
        let was_recording = ig.is_recording();
        let stats = ig.end_invocation(f.container);
        res.traffic.record_metadata_bytes += stats.record_bytes;
        res.replay = stats.replay;
        res.replay_unfinished = stats.replay_unfinished;
        res.accuracy_l2 = RestoreAccuracy {
            covered: stats.replay.l2_prefetches.saturating_sub(l2_over),
            uncovered: res.accuracy_l2.uncovered,
            overpredicted: l2_over,
        };
        if sink.enabled() {
            let end = ts_offset + m.now;
            if replay_live {
                // The invocation ended before replay drained; close the
                // session with what it managed to restore.
                sink.record(Event {
                    ts: end,
                    dur: 0,
                    track,
                    kind: EventKind::ReplayEnd {
                        container: f.container,
                        restored: stats.replay.entries_restored,
                    },
                });
            }
            if was_recording {
                sink.record(Event {
                    ts: end,
                    dur: 0,
                    track,
                    kind: EventKind::RecordEnd {
                        container: f.container,
                        entries: stats.entries_recorded,
                        bytes: stats.record_bytes,
                    },
                });
            }
            let d = &stats.replay;
            if d.decode_errors + d.entries_dropped + d.watchdog_abandons + d.stale_restored > 0 {
                sink.record(Event {
                    ts: end,
                    dur: 0,
                    track,
                    kind: EventKind::ReplayDegraded {
                        decode_errors: d.decode_errors,
                        entries_dropped: d.entries_dropped,
                        watchdog_abandons: d.watchdog_abandons,
                    },
                });
            }
        }
    }

    // Fig. 10 partition: everything from DRAM on the instruction path that
    // we did not attribute to the wrong path counts as useful.
    let total_mem = m.hierarchy.memory_read_bytes();
    res.traffic.useful_instruction_bytes =
        total_mem.saturating_sub(res.traffic.useless_instruction_bytes);

    // Top-Down attribution as spans tiling the invocation window: the
    // categories are aggregates, not a schedule, so the tiling is a
    // visual proportion (clamped to the window) rather than a timeline
    // of when each stall happened.
    if sink.enabled() {
        let end = ts_offset + m.now;
        let mut t = ts_offset + start_cycle;
        for (category, phase) in [
            (Category::Retiring, Phase::Retiring),
            (Category::FetchBound, Phase::FetchBound),
            (Category::BadSpeculation, Phase::BadSpeculation),
            (Category::BackendBound, Phase::BackendBound),
        ] {
            let cycles = res.topdown.get(category).round() as u64;
            let dur = cycles.min(end.saturating_sub(t));
            if dur > 0 {
                sink.record(Event {
                    ts: t,
                    dur,
                    track,
                    kind: EventKind::TopDown { phase, cycles },
                });
                t += dur;
            }
        }
    }

    if let Some(ig) = stashed_ignite {
        m.ignite = Some(ig);
    }
    res
}

/// Steps the paced background mechanisms for one cycle.
fn step_mechanisms(m: &mut Machine, f: &PreparedFunction, now: Cycle, res: &mut InvocationResult) {
    if let Some(jb) = &mut m.jukebox {
        let s = jb.step(now, &mut m.hierarchy);
        res.traffic.replay_metadata_bytes += s.metadata_bytes;
    }
    if let Some(ig) = &mut m.ignite {
        let s = ig.step(now, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
        res.traffic.replay_metadata_bytes += s.metadata_bytes;
    }
    if let Some(c) = &mut m.confluence {
        c.step(now, &mut m.hierarchy, &f.branch_index, &mut m.btb);
    }
}

/// Consults the BPU for a block's terminating branch, exactly as the
/// front-end would when the block's successor is considered for the FTQ.
///
/// `lookahead` is the block's distance (in blocks) from the fetch point —
/// 0 means demand-time (no run-ahead slack for Boomerang fills).
fn evaluate(m: &mut Machine, f: &PreparedFunction, block: &BlockExec, lookahead: usize) -> Eval {
    let br = block.branch;
    let ideal = m.fe.select.ideal;
    let actual_next = block.next_pc();

    let btb_entry = if ideal {
        // Perfect BTB: every branch identified with its current target.
        Some(BtbEntry::new(br.pc, br.target, br.kind))
    } else {
        let hit = m.btb.lookup_traced(br.pc);
        // A replayed entry whose recorded target no longer matches the
        // branch is stale metadata: it flows through prediction and is
        // corrected by the ordinary resteer path below, but Ignite counts
        // it so degradation experiments can observe staleness end-to-end.
        if let Some((entry, true)) = hit {
            if br.taken && entry.target != br.target {
                if let Some(ig) = &mut m.ignite {
                    ig.note_stale_restored();
                }
            }
        }
        hit.map(|(entry, _)| entry)
    };

    let mut btb_hit = btb_entry.is_some();
    let mut identified = btb_entry;

    // Boomerang: a BTB miss discovered while running ahead can be resolved
    // by fetching and predecoding the branch's cache block, if the fill
    // completes before the fetch stream reaches this block.
    if identified.is_none() && lookahead > 0 {
        if let Some(boomerang) = &mut m.boomerang {
            // Blocks take ~5 cycles each to drain at typical CPI, giving
            // the fill that much slack per block of run-ahead.
            let needed_at = m.now + lookahead as Cycle * 5;
            let fill =
                boomerang.request_fill(br.pc, m.now, &mut m.hierarchy, &f.branch_index, &mut m.btb);
            match fill {
                Some(outcome) if outcome.ready_at <= needed_at => {
                    identified = m.btb.probe(br.pc);
                    btb_hit = identified.is_some();
                }
                _ if br.kind == BranchKind::Return => {
                    // Predecode identifies returns even without a static
                    // target; the RAS then supplies the target. Model the
                    // identification with the same line-fetch+predecode
                    // latency.
                    if let Some(r) = m.hierarchy.prefetch_l1i(br.pc, m.now, FillKind::Prefetch) {
                        if r.ready_at + 6 <= needed_at {
                            identified = Some(BtbEntry::new(br.pc, br.target, BranchKind::Return));
                        }
                    } else {
                        identified = Some(BtbEntry::new(br.pc, br.target, BranchKind::Return));
                    }
                }
                _ => {}
            }
        }
    } else if identified.is_none() && m.boomerang.is_some() {
        // Demand-time discovery: too late to help this transition, but the
        // fill still lands in the BTB for future executions.
        if let Some(boomerang) = &mut m.boomerang {
            boomerang.request_fill(br.pc, m.now, &mut m.hierarchy, &f.branch_index, &mut m.btb);
        }
    }

    // Maintain the RAS in prediction order: calls push their return
    // address; identified returns consume the top.
    if br.kind == BranchKind::Call {
        m.ras.push(block.fallthrough());
    }
    // The indirect predictor's path history also advances in prediction
    // order, for every taken branch.
    if br.taken {
        if let Some(it) = &mut m.ittage {
            it.push_history(br.pc, br.target);
        }
    }
    let (outcome, cbp_pred) = match identified {
        Some(entry) => match br.kind {
            BranchKind::Conditional => {
                let pred = m.cbp.predict(br.pc);
                let predicted_next = if pred.taken { entry.target } else { block.fallthrough() };
                let outcome = if predicted_next == actual_next {
                    Outcome::Correct
                } else {
                    Outcome::CbpWrongDirection
                };
                (outcome, Some(pred))
            }
            BranchKind::Return => {
                // The BTB identifies the return; the RAS supplies the
                // target (an ideal front-end always predicts correctly).
                if ideal {
                    (Outcome::Correct, None)
                } else {
                    match m.ras.pop() {
                        Some(t) if t == actual_next => (Outcome::Correct, None),
                        _ => (Outcome::WrongTarget, None),
                    }
                }
            }
            BranchKind::Indirect => {
                // An ITTAGE predictor (if configured) overrides the BTB's
                // last-target prediction for polymorphic dispatch sites.
                // It predicts and trains here, in prediction order, so its
                // history discipline is self-consistent.
                let predicted = match &mut m.ittage {
                    Some(it) => {
                        let p = it.predict(br.pc).unwrap_or(entry.target);
                        it.update(br.pc, br.target);
                        p
                    }
                    None => entry.target,
                };
                if predicted == actual_next {
                    (Outcome::Correct, None)
                } else {
                    (Outcome::WrongTarget, None)
                }
            }
            BranchKind::Unconditional | BranchKind::Call => {
                if entry.target == actual_next {
                    (Outcome::Correct, None)
                } else {
                    (Outcome::WrongTarget, None)
                }
            }
        },
        None => {
            // Unidentified branch: the front-end continues sequentially.
            // An unidentified return also consumes its RAS entry once it
            // resolves, keeping the stack aligned with the call stream.
            if br.kind == BranchKind::Return {
                m.ras.pop();
            }
            if br.taken {
                (Outcome::BtbMissTaken, None)
            } else {
                (Outcome::Correct, None)
            }
        }
    };

    // Wrong-path fetch modelling: the front-end keeps fetching down the
    // wrong path until the branch resolves.
    if outcome != Outcome::Correct && !ideal {
        let wrong_start = match outcome {
            Outcome::BtbMissTaken => block.fallthrough(),
            Outcome::CbpWrongDirection => {
                if br.taken {
                    block.fallthrough() // predicted not-taken: fetches fall-through
                } else {
                    br.target // predicted taken: fetches the target path
                }
            }
            Outcome::WrongTarget => identified.map_or(block.fallthrough(), |e| e.target),
            Outcome::Correct => unreachable!(),
        };
        // A decoupled front-end (FDP) runs ahead down the wrong path at the
        // prefetcher's pace, fetching considerably more than a plain
        // fetch engine does within the resteer window (§6.3: Boomerang more
        // than doubles useless fetches over NL).
        let runahead: u64 = if m.fe.select.fdp { 2 } else { 1 };
        let lines = (runahead
            * m.uarch.frontend.exec_resteer_penalty
            * m.uarch.frontend.fetch_bytes_per_cycle
            / LINE_BYTES)
            .max(1);
        for i in 0..lines {
            let line = wrong_start + i * LINE_BYTES;
            m.hierarchy.prefetch_l1i(line, m.now, FillKind::Prefetch);
        }
    }

    Eval { outcome, cbp_pred, btb_hit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FrontEndConfig, StatePolicy};
    use ignite_uarch::UarchConfig;
    use ignite_workloads::gen::{generate, GenParams};

    fn small_function() -> PreparedFunction {
        let mut p = GenParams::example("sim-test");
        p.target_branches = 600;
        p.target_code_bytes = 24 * 1024;
        PreparedFunction::from_image(generate(&p), 0, 30_000)
    }

    fn run(fe: FrontEndConfig) -> (InvocationResult, InvocationResult) {
        let uarch = UarchConfig::ice_lake_like();
        let f = small_function();
        let mut m = Machine::new(&uarch, &fe);
        let first = run_invocation(&mut m, &f, 0);
        m.between_invocations();
        let second = run_invocation(&mut m, &f, 1);
        (first, second)
    }

    #[test]
    fn executes_all_instructions() {
        let (first, _) = run(FrontEndConfig::nl());
        assert!(first.instructions >= 30_000);
        assert!(first.cycles > 0);
    }

    #[test]
    fn topdown_accounts_all_cycles() {
        let (first, _) = run(FrontEndConfig::nl());
        let total = first.topdown.total();
        let cycles = first.cycles as f64;
        assert!((total - cycles).abs() / cycles < 0.02, "topdown {total} vs cycles {cycles}");
    }

    #[test]
    fn integer_stall_counters_tile_the_cycle_count() {
        use crate::topdown::Category;
        for fe in [FrontEndConfig::nl(), FrontEndConfig::fdp(), FrontEndConfig::ignite()] {
            let (first, second) = run(fe);
            for r in [&first, &second] {
                // The integer counters are the exact provenance of the
                // (integral-valued) FetchBound / BadSpeculation buckets…
                assert_eq!(r.topdown.get(Category::FetchBound), r.fetch_stall_cycles as f64);
                assert_eq!(
                    r.topdown.get(Category::BadSpeculation),
                    r.resteer_penalty_cycles as f64
                );
                // …and together they never exceed the invocation's total
                // cycles: the residual is steady-state execution.
                assert!(r.front_end_stall_cycles() <= r.cycles);
            }
            assert!(first.fetch_stall_cycles > 0, "cold invocations stall on fetch");
        }
    }

    #[test]
    fn lukewarm_is_slower_than_warm() {
        let uarch = UarchConfig::ice_lake_like();
        let f = small_function();
        // Lukewarm.
        let mut m = Machine::new(&uarch, &FrontEndConfig::nl());
        run_invocation(&mut m, &f, 0);
        m.between_invocations();
        let luke = run_invocation(&mut m, &f, 1);
        // Back-to-back.
        let warm_fe = FrontEndConfig::nl().with_policy("warm", StatePolicy::back_to_back());
        let mut m = Machine::new(&uarch, &warm_fe);
        run_invocation(&mut m, &f, 0);
        m.between_invocations();
        let warm = run_invocation(&mut m, &f, 1);
        assert!(
            luke.cpi() > warm.cpi() * 1.3,
            "lukewarm CPI {} must clearly exceed warm CPI {}",
            luke.cpi(),
            warm.cpi()
        );
    }

    #[test]
    fn fdp_outperforms_nl_on_lukewarm() {
        let (_, nl) = run(FrontEndConfig::nl());
        let (_, fdp) = run(FrontEndConfig::fdp());
        assert!(fdp.cycles < nl.cycles, "FDP {} cycles vs NL {} cycles", fdp.cycles, nl.cycles);
    }

    #[test]
    fn ideal_front_end_is_fastest() {
        let (_, ideal) = run(FrontEndConfig::ideal());
        let (_, nl) = run(FrontEndConfig::nl());
        assert!(ideal.cycles < nl.cycles);
        assert_eq!(ideal.l1i_misses, 0);
        assert_eq!(ideal.btb_misses, 0);
    }

    #[test]
    fn ignite_reduces_btb_misses_on_second_invocation() {
        let (first, second) = run(FrontEndConfig::ignite());
        assert!(
            second.btb_misses * 3 < first.btb_misses,
            "restored BTB: {} misses vs cold {}",
            second.btb_misses,
            first.btb_misses
        );
    }

    #[test]
    fn ignite_beats_boomerang_jukebox() {
        let (_, ignite) = run(FrontEndConfig::ignite());
        let (_, bjb) = run(FrontEndConfig::boomerang_jukebox());
        assert!(
            ignite.cycles < bjb.cycles,
            "Ignite {} vs Boomerang+JB {}",
            ignite.cycles,
            bjb.cycles
        );
    }

    #[test]
    fn warm_btb_reduces_resteers() {
        let (_, luke) = run(FrontEndConfig::boomerang_jukebox());
        let (_, warm_btb) = run(FrontEndConfig::boomerang_jukebox()
            .with_policy("+ warm BTB", StatePolicy::lukewarm_warm_btb()));
        assert!(warm_btb.btb_misses < luke.btb_misses / 2);
    }

    #[test]
    fn traffic_totals_are_consistent() {
        let (_, r) = run(FrontEndConfig::ignite());
        assert!(r.traffic.useful_instruction_bytes > 0);
        assert!(r.traffic.record_metadata_bytes > 0, "record runs every invocation");
        assert!(r.traffic.replay_metadata_bytes > 0, "replay ran on the second invocation");
    }

    #[test]
    fn ignite_on_boomerang_also_works() {
        // §5.3: Ignite "could equally be used with Boomerang".
        let (_, nl) = run(FrontEndConfig::nl());
        let (_, boomerang) = run(FrontEndConfig::boomerang());
        let (_, combo) = run(FrontEndConfig::ignite_boomerang());
        assert!(combo.cycles < boomerang.cycles, "Ignite helps Boomerang too");
        assert!(combo.cycles < nl.cycles);
        assert!(combo.btb_misses < boomerang.btb_misses);
    }

    #[test]
    fn returns_are_predicted_through_the_ras() {
        // With a restored BTB (returns identified) the RAS supplies return
        // targets; most returns must not resteer.
        let uarch = UarchConfig::ice_lake_like();
        let f = small_function();
        let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
        run_invocation(&mut m, &f, 0);
        m.between_invocations();
        run_invocation(&mut m, &f, 1);
        assert!(m.ras.pushes() > 100, "calls push the RAS");
        // Underflows only at root transitions (returns into the runtime).
        assert!(
            m.ras.underflows() < m.ras.pops() / 4,
            "underflows {} of {} pops",
            m.ras.underflows(),
            m.ras.pops()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (a1, a2) = run(FrontEndConfig::boomerang_jukebox());
        let (b1, b2) = run(FrontEndConfig::boomerang_jukebox());
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }
}
