#![warn(missing_docs)]
//! `ignite-chaos`: deterministic, seedable cluster-level failure
//! injection and the recovery policies that keep every invocation
//! accounted for.
//!
//! PR 1 made *metadata* fallible (`ignite_core::fault`); this crate
//! extends that contract upward to the whole node (DESIGN.md §13):
//!
//! * [`ChaosPlan`] — a pure-data schedule of core crashes/restarts,
//!   straggler windows (cycle-rate degradation), store corruption and
//!   transient store-unavailability windows, and dispatch drops. All
//!   randomness derives from one dedicated chaos seed, independent of
//!   the arrival seed, so varying either never perturbs the other.
//! * [`ChaosState`] — the lazily materialized window streams
//!   ([`WindowStream`]) the cluster simulator queries. Windows are
//!   generated in a fixed order regardless of query pattern, so two
//!   processes asking different questions still agree on the schedule.
//! * [`RetryPolicy`] — per-invocation deadlines, bounded retry with
//!   deterministic exponential backoff + hash-derived jitter, and the
//!   per-function [`CircuitBreaker`] thresholds that quarantine
//!   functions whose replay metadata faults repeatedly.
//! * [`ChaosStats`] — the full-stack ledger behind the
//!   `ignite-cluster-v2` conservation law: `submitted == completed +
//!   dropped_deadline + dropped_retries_exhausted`. Nothing is
//!   silently lost.
//!
//! The failure → outcome contract (who retries, who degrades to a cold
//! run, who drops) is decided by the consumer (`ignite-cluster`); this
//! crate only answers *when* and *whether* a fault fires, and does so
//! bit-identically across processes.

pub mod breaker;
pub mod plan;
pub mod state;
pub mod stats;

pub use breaker::{BreakerState, CircuitBreaker};
pub use plan::{parse_chaos_spec, parse_retry_spec, ChaosPlan, RetryPolicy};
pub use state::{hash_chance_ppm, hash_draw, ChaosState, WindowStream};
pub use stats::ChaosStats;
