//! The failure schedule ([`ChaosPlan`]) and recovery policy
//! ([`RetryPolicy`]) configuration types, plus the `k=v` spec parsers
//! behind `cluster --chaos SPEC --retry SPEC`.
//!
//! Both types are pure data with integer fields only (rates in
//! parts-per-million, factors in milli-x), so plans hash, compare, and
//! serialize exactly — the same reproducibility discipline as
//! `ignite_core::fault::FaultPlan`, which [`ChaosPlan`] embeds for
//! store-corruption draws.

use ignite_core::fault::PPM_SCALE;
use ignite_core::FaultPlan;
use ignite_uarch::rng::SplitMix64;

use crate::state::{hash_draw, LABEL_JITTER};

/// Label for deriving the embedded [`FaultPlan`] seed from the chaos
/// seed (see [`ChaosPlan::seeded`]).
const LABEL_STORE_FAULT: u64 = 6 << 32;

/// A deterministic cluster-level failure schedule.
///
/// All fields are mean rates or durations; the realized schedule is
/// drawn from `seed` alone (see [`crate::ChaosState`]). A zero MTBF or
/// zero rate disables that failure class. The inert plan
/// ([`ChaosPlan::none`]) injects nothing, but still routes the
/// simulator through the chaos-aware bookkeeping — useful for testing
/// that the accounting itself is neutral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChaosPlan {
    /// Root seed for every chaos stream. Independent of the arrival
    /// seed by construction: no draw mixes both.
    pub seed: u64,
    /// Mean cycles between core crashes (per core; 0 = never).
    pub crash_mtbf_cycles: u64,
    /// Cycles a crashed core stays down before restarting.
    pub crash_repair_cycles: u64,
    /// Mean cycles between straggle windows (per core; 0 = never).
    pub straggle_mtbf_cycles: u64,
    /// Length of each straggle window.
    pub straggle_duration_cycles: u64,
    /// Cycle-cost multiplier while straggling, in milli-x
    /// (2000 = work takes 2x the cycles). Clamped to >= 1000.
    pub straggle_factor_milli: u32,
    /// Mean cycles between store-unavailability windows (node-wide;
    /// 0 = never).
    pub store_unavail_mtbf_cycles: u64,
    /// Length of each store-unavailability window.
    pub store_unavail_duration_cycles: u64,
    /// Metadata corruption applied to store fetches (bit flips, losses
    /// — the PR 1 fault model, re-aimed at the node store).
    pub store_fault: FaultPlan,
    /// Probability (ppm) that a dispatch attempt is dropped before
    /// reaching a core.
    pub dispatch_drop_ppm: u32,
}

impl ChaosPlan {
    /// The inert plan: chaos machinery on, zero failures injected.
    pub const fn none() -> Self {
        ChaosPlan {
            seed: 0,
            crash_mtbf_cycles: 0,
            crash_repair_cycles: 0,
            straggle_mtbf_cycles: 0,
            straggle_duration_cycles: 0,
            straggle_factor_milli: 1000,
            store_unavail_mtbf_cycles: 0,
            store_unavail_duration_cycles: 0,
            store_fault: FaultPlan::none(),
            dispatch_drop_ppm: 0,
        }
    }

    /// The `--chaos default` preset: every failure class active at
    /// rates that exercise all recovery paths within a sub-second
    /// simulated horizon without collapsing throughput.
    pub const fn default_preset() -> Self {
        ChaosPlan {
            seed: 0,
            crash_mtbf_cycles: 400_000,
            crash_repair_cycles: 60_000,
            straggle_mtbf_cycles: 300_000,
            straggle_duration_cycles: 50_000,
            straggle_factor_milli: 2_000,
            store_unavail_mtbf_cycles: 200_000,
            store_unavail_duration_cycles: 30_000,
            store_fault: FaultPlan {
                seed: 0,
                bit_flip_ppm: 200,
                stale_ppm: 0,
                truncate_ppm: 0,
                duplicate_ppm: 0,
                loss_ppm: 20_000,
            },
            dispatch_drop_ppm: 20_000,
        }
    }

    /// Sets the chaos seed and derives the embedded store-fault seed
    /// from it, so one `--chaos-seed` value pins the whole schedule.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.store_fault.seed = SplitMix64::new(seed ^ LABEL_STORE_FAULT).next_u64();
        self
    }

    /// Whether any failure class can actually fire.
    pub fn is_active(&self) -> bool {
        self.crash_mtbf_cycles > 0
            || self.straggle_mtbf_cycles > 0
            || self.store_unavail_mtbf_cycles > 0
            || self.store_fault.is_active()
            || self.dispatch_drop_ppm > 0
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::none()
    }
}

/// Recovery policy: deadlines, bounded retry with exponential backoff
/// + deterministic jitter, and circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Maximum dispatch attempts per invocation (>= 1; 1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub backoff_base_cycles: u64,
    /// Backoff growth per failed attempt, milli-x (2000 = doubling).
    pub backoff_mult_milli: u32,
    /// Backoff ceiling (pre-jitter).
    pub backoff_max_cycles: u64,
    /// Jitter span as a ppm fraction of the backoff: the realized
    /// backoff is `b + uniform[0, b * jitter_ppm / 1e6]`, drawn by
    /// pure hash of `(chaos seed, invocation, attempt)`.
    pub jitter_ppm: u32,
    /// End-to-end deadline per invocation, measured from arrival
    /// (0 = no deadline). An invocation that cannot be re-dispatched
    /// before its deadline is dropped with reason `deadline`.
    pub deadline_cycles: u64,
    /// Consecutive replay-metadata faults that open a function's
    /// circuit breaker (0 = breaker disabled).
    pub breaker_threshold: u32,
    /// Cycles an open breaker waits before letting one probe through.
    pub breaker_cooldown_cycles: u64,
}

impl Default for RetryPolicy {
    /// The `--retry default` preset: three attempts, 10k-cycle base
    /// backoff doubling to a 1M ceiling with 25% jitter, no deadline,
    /// breaker at five consecutive faults with a 500k cooldown.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_cycles: 10_000,
            backoff_mult_milli: 2_000,
            backoff_max_cycles: 1_000_000,
            jitter_ppm: 250_000,
            deadline_cycles: 0,
            breaker_threshold: 5,
            breaker_cooldown_cycles: 500_000,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff after failed attempt `attempt`
    /// (1-based) of `invocation`: exponential growth capped at
    /// [`backoff_max_cycles`](RetryPolicy::backoff_max_cycles), plus
    /// hash-derived jitter keyed on `(chaos_seed, invocation,
    /// attempt)` so retry timing is independent of global draw order.
    /// Always >= 1 cycle.
    pub fn backoff_for(&self, chaos_seed: u64, invocation: u64, attempt: u32) -> u64 {
        let cap = u128::from(self.backoff_max_cycles.max(1));
        let mut b = u128::from(self.backoff_base_cycles.max(1));
        for _ in 1..attempt {
            b = (b * u128::from(self.backoff_mult_milli)) / 1000;
            if b >= cap {
                b = cap;
                break;
            }
        }
        let mut backoff = b.min(cap) as u64;
        if self.jitter_ppm > 0 {
            let span = ((u128::from(backoff) * u128::from(self.jitter_ppm)) / u128::from(PPM_SCALE))
                as u64;
            if span > 0 {
                let draw = hash_draw(chaos_seed, LABEL_JITTER, invocation, u64::from(attempt));
                backoff += ((u128::from(draw) * (u128::from(span) + 1)) >> 64) as u64;
            }
        }
        backoff.max(1)
    }
}

/// Splits a `k=v,k=v` spec into pairs, rejecting malformed entries.
fn kv_pairs(spec: &str) -> Result<Vec<(&str, &str)>, String> {
    spec.split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("malformed spec entry '{part}' (expected key=value)"))
        })
        .collect()
}

fn parse_u64(key: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|e| format!("invalid value for '{key}': '{v}' ({e})"))
}

fn parse_u32(key: &str, v: &str) -> Result<u32, String> {
    v.parse().map_err(|e| format!("invalid value for '{key}': '{v}' ({e})"))
}

/// Parses a factor like `2.0` (x) into milli-x (2000).
fn parse_factor_milli(key: &str, v: &str) -> Result<u32, String> {
    let f: f64 = v.parse().map_err(|e| format!("invalid value for '{key}': '{v}' ({e})"))?;
    if !f.is_finite() || !(1.0..=1_000.0).contains(&f) {
        return Err(format!("'{key}' must be a finite factor in [1, 1000], got {v}"));
    }
    Ok((f * 1000.0).round() as u32)
}

/// Parses a `--chaos` spec: `default`, `none`, or a `k=v` list over
/// `crash-mtbf`, `crash-repair`, `straggle-mtbf`, `straggle-dur`,
/// `straggle-factor` (x), `store-mtbf`, `store-dur`, `corrupt-ppm`,
/// `loss-ppm`, `drop-ppm`. Unlisted keys keep [`ChaosPlan::none`]
/// values, so `--chaos crash-mtbf=50000,crash-repair=5000` is a
/// crash-only plan. The returned plan is unseeded — callers apply
/// [`ChaosPlan::seeded`] with the independent `--chaos-seed`.
pub fn parse_chaos_spec(spec: &str) -> Result<ChaosPlan, String> {
    match spec.trim() {
        "default" => return Ok(ChaosPlan::default_preset()),
        "none" => return Ok(ChaosPlan::none()),
        _ => {}
    }
    let mut plan = ChaosPlan::none();
    for (key, v) in kv_pairs(spec)? {
        match key {
            "crash-mtbf" => plan.crash_mtbf_cycles = parse_u64(key, v)?,
            "crash-repair" => plan.crash_repair_cycles = parse_u64(key, v)?,
            "straggle-mtbf" => plan.straggle_mtbf_cycles = parse_u64(key, v)?,
            "straggle-dur" => plan.straggle_duration_cycles = parse_u64(key, v)?,
            "straggle-factor" => plan.straggle_factor_milli = parse_factor_milli(key, v)?,
            "store-mtbf" => plan.store_unavail_mtbf_cycles = parse_u64(key, v)?,
            "store-dur" => plan.store_unavail_duration_cycles = parse_u64(key, v)?,
            "corrupt-ppm" => plan.store_fault.bit_flip_ppm = parse_u32(key, v)?,
            "loss-ppm" => plan.store_fault.loss_ppm = parse_u32(key, v)?,
            "drop-ppm" => plan.dispatch_drop_ppm = parse_u32(key, v)?,
            other => {
                return Err(format!(
                    "unknown chaos key '{other}' (known: crash-mtbf, crash-repair, \
                     straggle-mtbf, straggle-dur, straggle-factor, store-mtbf, store-dur, \
                     corrupt-ppm, loss-ppm, drop-ppm)"
                ))
            }
        }
    }
    if plan.crash_mtbf_cycles > 0 && plan.crash_repair_cycles == 0 {
        return Err("crash-mtbf requires a nonzero crash-repair".to_string());
    }
    if plan.straggle_mtbf_cycles > 0 && plan.straggle_duration_cycles == 0 {
        return Err("straggle-mtbf requires a nonzero straggle-dur".to_string());
    }
    if plan.store_unavail_mtbf_cycles > 0 && plan.store_unavail_duration_cycles == 0 {
        return Err("store-mtbf requires a nonzero store-dur".to_string());
    }
    Ok(plan)
}

/// Parses a `--retry` spec: `default` or a `k=v` list over `attempts`,
/// `base`, `mult` (x, e.g. `2.0`), `max`, `jitter-ppm`, `deadline`,
/// `breaker-threshold`, `breaker-cooldown`. Unlisted keys keep the
/// [`RetryPolicy::default`] values.
pub fn parse_retry_spec(spec: &str) -> Result<RetryPolicy, String> {
    let mut policy = RetryPolicy::default();
    if spec.trim() == "default" {
        return Ok(policy);
    }
    for (key, v) in kv_pairs(spec)? {
        match key {
            "attempts" => policy.max_attempts = parse_u32(key, v)?,
            "base" => policy.backoff_base_cycles = parse_u64(key, v)?,
            "mult" => policy.backoff_mult_milli = parse_factor_milli(key, v)?,
            "max" => policy.backoff_max_cycles = parse_u64(key, v)?,
            "jitter-ppm" => policy.jitter_ppm = parse_u32(key, v)?,
            "deadline" => policy.deadline_cycles = parse_u64(key, v)?,
            "breaker-threshold" => policy.breaker_threshold = parse_u32(key, v)?,
            "breaker-cooldown" => policy.breaker_cooldown_cycles = parse_u64(key, v)?,
            other => {
                return Err(format!(
                    "unknown retry key '{other}' (known: attempts, base, mult, max, \
                     jitter-ppm, deadline, breaker-threshold, breaker-cooldown)"
                ))
            }
        }
    }
    if policy.max_attempts == 0 {
        return Err("retry attempts must be >= 1".to_string());
    }
    if policy.jitter_ppm > PPM_SCALE {
        return Err(format!("jitter-ppm must be <= {PPM_SCALE}"));
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inactive_and_default() {
        assert!(!ChaosPlan::none().is_active());
        assert_eq!(ChaosPlan::default(), ChaosPlan::none());
        assert!(ChaosPlan::default_preset().is_active());
    }

    #[test]
    fn seeding_pins_both_seeds() {
        let a = ChaosPlan::default_preset().seeded(7);
        let b = ChaosPlan::default_preset().seeded(7);
        let c = ChaosPlan::default_preset().seeded(8);
        assert_eq!(a, b);
        assert_ne!(a.store_fault.seed, c.store_fault.seed);
        assert_ne!(a.store_fault.seed, 7, "fault seed must be derived, not aliased");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy { jitter_ppm: 0, ..RetryPolicy::default() };
        assert_eq!(p.backoff_for(0, 1, 1), 10_000);
        assert_eq!(p.backoff_for(0, 1, 2), 20_000);
        assert_eq!(p.backoff_for(0, 1, 3), 40_000);
        assert_eq!(p.backoff_for(0, 1, 20), 1_000_000, "hits the cap");
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let base = RetryPolicy { jitter_ppm: 0, ..p }.backoff_for(5, 9, 2);
        let a = p.backoff_for(5, 9, 2);
        assert_eq!(a, p.backoff_for(5, 9, 2), "same key, same jitter");
        assert!(a >= base && a <= base + base / 4 + 1, "jitter within 25%: {base} -> {a}");
        assert_ne!(p.backoff_for(5, 9, 2), p.backoff_for(5, 10, 2), "keyed per invocation");
    }

    #[test]
    fn chaos_spec_round_trip_and_presets() {
        assert_eq!(parse_chaos_spec("default").unwrap(), ChaosPlan::default_preset());
        assert_eq!(parse_chaos_spec("none").unwrap(), ChaosPlan::none());
        let plan = parse_chaos_spec("crash-mtbf=50000,crash-repair=5000,drop-ppm=100").unwrap();
        assert_eq!(plan.crash_mtbf_cycles, 50_000);
        assert_eq!(plan.crash_repair_cycles, 5_000);
        assert_eq!(plan.dispatch_drop_ppm, 100);
        assert_eq!(plan.store_unavail_mtbf_cycles, 0);
        let f = parse_chaos_spec("straggle-mtbf=1000,straggle-dur=10,straggle-factor=1.5").unwrap();
        assert_eq!(f.straggle_factor_milli, 1_500);
    }

    #[test]
    fn chaos_spec_rejects_malformed_input() {
        assert!(parse_chaos_spec("bogus-key=1").is_err());
        assert!(parse_chaos_spec("crash-mtbf").is_err());
        assert!(parse_chaos_spec("crash-mtbf=abc").is_err());
        assert!(parse_chaos_spec("crash-mtbf=100").is_err(), "repair required");
        assert!(parse_chaos_spec("straggle-factor=0.5,straggle-mtbf=1,straggle-dur=1").is_err());
    }

    #[test]
    fn retry_spec_round_trip_and_errors() {
        assert_eq!(parse_retry_spec("default").unwrap(), RetryPolicy::default());
        let p = parse_retry_spec("attempts=5,base=100,mult=3.0,deadline=90000").unwrap();
        assert_eq!(p.max_attempts, 5);
        assert_eq!(p.backoff_base_cycles, 100);
        assert_eq!(p.backoff_mult_milli, 3_000);
        assert_eq!(p.deadline_cycles, 90_000);
        assert!(parse_retry_spec("attempts=0").is_err());
        assert!(parse_retry_spec("nope=1").is_err());
        assert!(parse_retry_spec("jitter-ppm=2000000").is_err());
    }
}
