//! Per-function circuit breaker: quarantine functions whose replay
//! metadata faults repeatedly, trading warmth for availability.
//!
//! Classic three-state machine (DESIGN.md §13):
//!
//! ```text
//!   Closed --(threshold consecutive faults)--> Open
//!   Open   --(cooldown elapses; next request probes)--> HalfOpen
//!   HalfOpen --(probe succeeds)--> Closed
//!   HalfOpen --(probe faults)--> Open (fresh cooldown)
//! ```
//!
//! "Fault" here means a *replay-metadata* fault (corrupt or lost store
//! regions); store-unavailability windows do not count, because they
//! say nothing about the function's own metadata health. While open,
//! the cluster bypasses record/replay entirely for the function — it
//! runs cold, which always succeeds.

/// The breaker's current position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: replay allowed; counting consecutive faults.
    Closed {
        /// Consecutive faults observed since the last success.
        faults: u32,
    },
    /// Quarantined: replay bypassed until the cooldown expires.
    Open {
        /// Cycle at which the next request may probe.
        until: u64,
    },
    /// Cooldown expired: exactly one probe decides open vs closed.
    HalfOpen,
}

/// A per-function circuit breaker with deterministic transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    state: BreakerState,
    threshold: u32,
    cooldown_cycles: u64,
    opens: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker. `threshold == 0` disables it (it
    /// never opens, and replay is always allowed).
    pub fn new(threshold: u32, cooldown_cycles: u64) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed { faults: 0 },
            threshold,
            cooldown_cycles,
            opens: 0,
            closes: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Times the breaker has re-closed after a successful probe.
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Whether a request at `now` may attempt replay. Transitions
    /// `Open -> HalfOpen` when the cooldown has expired (the caller's
    /// request becomes the probe).
    pub fn replay_allowed(&mut self, now: u64) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a replay-metadata fault observed at `now`.
    pub fn record_fault(&mut self, now: u64) {
        if self.threshold == 0 {
            return;
        }
        match self.state {
            BreakerState::Closed { faults } => {
                let faults = faults + 1;
                if faults >= self.threshold {
                    self.state =
                        BreakerState::Open { until: now.saturating_add(self.cooldown_cycles) };
                    self.opens += 1;
                } else {
                    self.state = BreakerState::Closed { faults };
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open { until: now.saturating_add(self.cooldown_cycles) };
                self.opens += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Records a clean (fault-free) replay fetch.
    pub fn record_success(&mut self) {
        if self.threshold == 0 {
            return;
        }
        match self.state {
            BreakerState::Closed { faults: 0 } => {}
            BreakerState::Closed { .. } => self.state = BreakerState::Closed { faults: 0 },
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed { faults: 0 };
                self.closes += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_faults() {
        let mut b = CircuitBreaker::new(3, 100);
        b.record_fault(10);
        b.record_fault(20);
        assert!(b.replay_allowed(25), "still closed below threshold");
        b.record_fault(30);
        assert_eq!(b.state(), BreakerState::Open { until: 130 });
        assert_eq!(b.opens(), 1);
        assert!(!b.replay_allowed(129));
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(2, 100);
        b.record_fault(1);
        b.record_success();
        b.record_fault(2);
        assert!(b.replay_allowed(3), "non-consecutive faults never open");
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn half_open_probe_decides() {
        let mut b = CircuitBreaker::new(1, 50);
        b.record_fault(0);
        assert!(!b.replay_allowed(49));
        assert!(b.replay_allowed(50), "cooldown expired: probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_fault(55);
        assert_eq!(b.state(), BreakerState::Open { until: 105 }, "failed probe re-opens");
        assert!(b.replay_allowed(200));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed { faults: 0 });
        assert_eq!(b.closes(), 1);
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = CircuitBreaker::new(0, 100);
        for t in 0..1_000 {
            b.record_fault(t);
            assert!(b.replay_allowed(t));
        }
        assert_eq!(b.opens(), 0);
    }
}
