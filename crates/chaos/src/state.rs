//! Deterministic failure-window streams and order-independent draws.
//!
//! Two kinds of randomness, chosen for different determinism needs:
//!
//! * **Window streams** — renewal processes (exponential gaps between
//!   fixed-length windows) materialized lazily but *in generation
//!   order*: querying time `t` generates every window up to the first
//!   one starting after `t` and caches it, so the schedule is a pure
//!   function of the seed no matter which times are probed first, or
//!   how often.
//! * **Pure-hash draws** ([`hash_draw`], [`hash_chance_ppm`]) — for
//!   per-invocation decisions (dispatch drops, backoff jitter) that
//!   must not depend on *how many* other draws happened before them.
//!   Each draw is a stateless function of `(seed, label, invocation,
//!   attempt)`, which is what makes the arrival-seed / chaos-seed
//!   independence guarantee strong rather than incidental.

use ignite_core::fault::PPM_SCALE;
use ignite_uarch::rng::SplitMix64;

use crate::plan::ChaosPlan;

/// Golden-ratio multiplier shared with [`SplitMix64::fork`].
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Second mixing constant (from `ignite_core::fault`'s per-invocation
/// stream derivation).
const MIX_A: u64 = 0xD1B5_4A32_D192_ED03;
/// Third mixing constant (MurmurHash3 finalizer family).
const MIX_B: u64 = 0xA076_1D64_78BD_642F;

/// Stateless 64-bit draw: a pure function of `(seed, label, a, b)`.
///
/// Used for decisions that must be independent of draw order — e.g.
/// the jitter for `(invocation, attempt)` is the same whether or not
/// any other invocation retried first.
#[inline]
pub fn hash_draw(seed: u64, label: u64, a: u64, b: u64) -> u64 {
    SplitMix64::new(
        seed ^ label.wrapping_mul(GOLDEN) ^ a.wrapping_mul(MIX_A) ^ b.wrapping_mul(MIX_B),
    )
    .next_u64()
}

/// Stateless Bernoulli trial with probability `ppm` parts-per-million.
///
/// `ppm == 0` never fires; `ppm >=` [`PPM_SCALE`] always fires.
#[inline]
pub fn hash_chance_ppm(seed: u64, label: u64, a: u64, b: u64, ppm: u32) -> bool {
    if ppm == 0 {
        return false;
    }
    let draw = ((u128::from(hash_draw(seed, label, a, b)) * u128::from(PPM_SCALE)) >> 64) as u32;
    draw < ppm
}

/// Draws an exponential inter-window gap with the given mean, floored
/// at one cycle (the same `-mean * ln(1-u)` shape as the Poisson
/// arrival process and `ignite_core::fault`'s geometric bit-gap).
fn exp_gap(rng: &mut SplitMix64, mean_cycles: u64) -> u64 {
    let u = rng.next_f64(); // [0, 1), so 1-u is in (0, 1].
    let gap = -(mean_cycles as f64) * (1.0 - u).ln();
    if !gap.is_finite() || gap >= u64::MAX as f64 {
        return u64::MAX / 4;
    }
    (gap as u64).max(1)
}

/// A lazily generated stream of non-overlapping half-open failure
/// windows `[start, end)` with exponential gaps and fixed duration.
///
/// Generation is strictly sequential and cached, so the realized
/// schedule is a pure function of `(seed, mtbf, duration)` — query
/// order, repetition, and non-monotonic probes cannot change it.
#[derive(Debug, Clone)]
pub struct WindowStream {
    rng: SplitMix64,
    mtbf_cycles: u64,
    duration_cycles: u64,
    windows: Vec<(u64, u64)>,
}

impl WindowStream {
    /// Creates a stream. `mtbf_cycles == 0` disables it (no windows
    /// ever fire); `duration_cycles` is floored at one cycle.
    pub fn new(rng: SplitMix64, mtbf_cycles: u64, duration_cycles: u64) -> Self {
        WindowStream {
            rng,
            mtbf_cycles,
            duration_cycles: duration_cycles.max(1),
            windows: Vec::new(),
        }
    }

    /// Whether this stream can ever produce a window.
    pub fn enabled(&self) -> bool {
        self.mtbf_cycles > 0
    }

    /// Generates windows until one starts strictly after `t` (so every
    /// window with `start <= t` is materialized).
    fn ensure_to(&mut self, t: u64) {
        if self.mtbf_cycles == 0 {
            return;
        }
        while self.windows.last().is_none_or(|&(start, _)| start <= t) {
            let last_end = self.windows.last().map_or(0, |&(_, end)| end);
            let gap = exp_gap(&mut self.rng, self.mtbf_cycles);
            let start = last_end.saturating_add(gap);
            let end = start.saturating_add(self.duration_cycles);
            self.windows.push((start, end));
            if start == u64::MAX {
                break; // saturated: nothing later can be represented.
            }
        }
    }

    /// The window containing `t`, if any.
    pub fn window_at(&mut self, t: u64) -> Option<(u64, u64)> {
        if self.mtbf_cycles == 0 {
            return None;
        }
        self.ensure_to(t);
        // Last window with start <= t (windows are sorted, disjoint).
        let idx = self.windows.partition_point(|&(start, _)| start <= t);
        let (start, end) = *self.windows.get(idx.checked_sub(1)?)?;
        (t >= start && t < end).then_some((start, end))
    }

    /// Whether `t` falls inside a window.
    pub fn contains(&mut self, t: u64) -> bool {
        self.window_at(t).is_some()
    }

    /// The first window start in the inclusive range `[lo, hi]`, if
    /// any. Returns `None` for an empty range (`lo > hi`).
    pub fn first_start_in(&mut self, lo: u64, hi: u64) -> Option<u64> {
        if self.mtbf_cycles == 0 || lo > hi {
            return None;
        }
        self.ensure_to(hi);
        self.windows.iter().map(|&(start, _)| start).find(|&start| start >= lo && start <= hi)
    }
}

/// The materialized chaos schedule for one cluster run: per-core crash
/// and straggle streams plus one store-unavailability stream per node
/// (each node is its own failure domain), all forked from the plan's
/// single chaos seed.
#[derive(Debug, Clone)]
pub struct ChaosState {
    plan: ChaosPlan,
    crash: Vec<WindowStream>,
    straggle: Vec<WindowStream>,
    store: Vec<WindowStream>,
}

/// Sub-stream labels. Fixed constants so adding a stream kind never
/// reshuffles existing schedules.
const LABEL_CRASH: u64 = 1 << 32;
const LABEL_STRAGGLE: u64 = 2 << 32;
const LABEL_STORE: u64 = 3 << 32;
/// Pure-hash draw labels (see [`hash_draw`]).
pub(crate) const LABEL_DROP: u64 = 4 << 32;
pub(crate) const LABEL_JITTER: u64 = 5 << 32;

impl ChaosState {
    /// Builds the per-core streams for a single node with `cores`
    /// cores (the pre-multinode constructor, kept byte-compatible).
    pub fn new(plan: ChaosPlan, cores: usize) -> Self {
        Self::for_cluster(plan, 1, cores)
    }

    /// Builds the streams for an N-node cluster: crash and straggle
    /// streams for every core (global core index `node *
    /// cores_per_node + local`), and one store-unavailability stream
    /// per node.
    ///
    /// Streams are forked in a fixed order (all crash streams, then
    /// all straggle streams, then the per-node store streams), so a
    /// plan replays identically for a given shape. Node 0's store
    /// stream label is `LABEL_STORE | 0 == LABEL_STORE` and the root
    /// generator reaches the store fork in the same state for
    /// `(1, c)` as the old single-node constructor did for `c` cores —
    /// which is what keeps 1-node chaos runs byte-identical to the
    /// committed goldens.
    pub fn for_cluster(plan: ChaosPlan, nodes: usize, cores_per_node: usize) -> Self {
        let total = nodes * cores_per_node;
        let mut root = SplitMix64::new(plan.seed);
        let crash = (0..total)
            .map(|i| {
                WindowStream::new(
                    root.fork(LABEL_CRASH | i as u64),
                    plan.crash_mtbf_cycles,
                    plan.crash_repair_cycles,
                )
            })
            .collect();
        let straggle = (0..total)
            .map(|i| {
                WindowStream::new(
                    root.fork(LABEL_STRAGGLE | i as u64),
                    plan.straggle_mtbf_cycles,
                    plan.straggle_duration_cycles,
                )
            })
            .collect();
        let store = (0..nodes)
            .map(|n| {
                WindowStream::new(
                    root.fork(LABEL_STORE | n as u64),
                    plan.store_unavail_mtbf_cycles,
                    plan.store_unavail_duration_cycles,
                )
            })
            .collect();
        ChaosState { plan, crash, straggle, store }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Whether `core` is inside a crash window at time `t` (down: it
    /// can neither hold nor accept work).
    pub fn core_down(&mut self, core: usize, t: u64) -> bool {
        self.crash[core].contains(t)
    }

    /// If `core` is down at `t`, the cycle at which it restarts.
    pub fn core_restart_after(&mut self, core: usize, t: u64) -> Option<u64> {
        self.crash[core].window_at(t).map(|(_, end)| end)
    }

    /// The first crash striking `core` in the inclusive cycle range
    /// `[lo, hi]` — used to test whether an in-flight attempt whose
    /// completion is scheduled at `hi` survives.
    pub fn crash_in(&mut self, core: usize, lo: u64, hi: u64) -> Option<u64> {
        self.crash[core].first_start_in(lo, hi)
    }

    /// The cycle-rate degradation factor (milli-x, 1000 = full speed)
    /// for work dispatched on `core` at time `t`.
    pub fn straggle_factor_milli(&mut self, core: usize, t: u64) -> u32 {
        if self.straggle[core].contains(t) {
            self.plan.straggle_factor_milli.max(1000)
        } else {
            1000
        }
    }

    /// Whether node 0's metadata store is unreachable at `t` (the
    /// single-node shorthand for [`ChaosState::store_unavailable_on`]).
    pub fn store_unavailable(&mut self, t: u64) -> bool {
        self.store_unavailable_on(0, t)
    }

    /// Whether `node`'s metadata store is unreachable at `t`.
    pub fn store_unavailable_on(&mut self, node: usize, t: u64) -> bool {
        self.store[node].contains(t)
    }

    /// The earliest restart among cores down at `now` — the extra DES
    /// event source that wakes the scheduler when queued work is
    /// waiting only on repairs.
    pub fn earliest_restart(&mut self, now: u64) -> Option<u64> {
        self.earliest_restart_among(0..self.crash.len(), now)
    }

    /// [`ChaosState::earliest_restart`] restricted to a global-core
    /// range — one node's cores, when only that node has queued work.
    pub fn earliest_restart_among(
        &mut self,
        cores: std::ops::Range<usize>,
        now: u64,
    ) -> Option<u64> {
        cores.filter_map(|core| self.core_restart_after(core, now)).min()
    }

    /// Whether dispatch attempt `attempt` of `invocation` is dropped
    /// before reaching a core (a pure-hash draw: independent of
    /// dispatch order and of every other stream).
    pub fn dispatch_dropped(&self, invocation: u64, attempt: u32) -> bool {
        hash_chance_ppm(
            self.plan.seed,
            LABEL_DROP,
            invocation,
            u64::from(attempt),
            self.plan.dispatch_drop_ppm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64, mtbf: u64, dur: u64) -> WindowStream {
        WindowStream::new(SplitMix64::new(seed), mtbf, dur)
    }

    #[test]
    fn disabled_stream_never_fires() {
        let mut s = stream(1, 0, 100);
        assert!(!s.enabled());
        assert!(!s.contains(0));
        assert!(s.first_start_in(0, u64::MAX - 1).is_none());
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let mut s = stream(7, 1_000, 300);
        s.ensure_to(1_000_000);
        assert!(s.windows.len() > 100, "mtbf 1k over 1M cycles should fire often");
        for pair in s.windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "windows overlap: {pair:?}");
        }
        for &(start, end) in &s.windows {
            assert_eq!(end - start, 300);
        }
    }

    #[test]
    fn query_order_does_not_change_the_schedule() {
        let mut fwd = stream(42, 5_000, 500);
        let mut probes: Vec<u64> = (0..200).map(|i| i * 997).collect();
        let forward: Vec<bool> = probes.iter().map(|&t| fwd.contains(t)).collect();
        let mut rev = stream(42, 5_000, 500);
        probes.reverse();
        let mut backward: Vec<bool> = probes.iter().map(|&t| rev.contains(t)).collect();
        backward.reverse();
        assert_eq!(forward, backward, "non-monotonic queries must not perturb windows");
        assert_eq!(fwd.windows, rev.windows);
    }

    #[test]
    fn window_at_matches_contains() {
        let mut s = stream(9, 2_000, 250);
        for t in (0..100_000).step_by(97) {
            let w = s.window_at(t);
            if let Some((start, end)) = w {
                assert!(t >= start && t < end);
            }
            assert_eq!(w.is_some(), s.contains(t));
        }
    }

    #[test]
    fn first_start_in_finds_exact_boundaries() {
        let mut s = stream(3, 1_500, 100);
        s.ensure_to(50_000);
        let (start, _) = s.windows[2];
        assert_eq!(s.first_start_in(start, start), Some(start));
        assert_eq!(s.first_start_in(start + 1, start + 1), None);
        assert!(s.first_start_in(10, 5).is_none(), "empty range");
    }

    #[test]
    fn hash_draw_is_pure_and_label_separated() {
        assert_eq!(hash_draw(1, 2, 3, 4), hash_draw(1, 2, 3, 4));
        assert_ne!(hash_draw(1, 2, 3, 4), hash_draw(1, 2, 3, 5));
        assert_ne!(hash_draw(1, LABEL_DROP, 3, 4), hash_draw(1, LABEL_JITTER, 3, 4));
        assert_ne!(hash_draw(1, 2, 3, 4), hash_draw(2, 2, 3, 4));
    }

    #[test]
    fn hash_chance_respects_extremes_and_rate() {
        assert!(!hash_chance_ppm(5, 1, 0, 0, 0));
        assert!(hash_chance_ppm(5, 1, 0, 0, PPM_SCALE));
        let hits = (0..100_000u64).filter(|&i| hash_chance_ppm(11, 1, i, 0, 100_000)).count();
        // 10% +- generous slack.
        assert!((8_000..12_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn chaos_state_streams_are_independent_per_core() {
        let plan = ChaosPlan { seed: 77, ..ChaosPlan::default_preset() };
        let mut st = ChaosState::new(plan, 2);
        st.crash[0].ensure_to(10_000_000);
        st.crash[1].ensure_to(10_000_000);
        assert_ne!(st.crash[0].windows, st.crash[1].windows);
    }

    #[test]
    fn cluster_store_streams_are_independent_per_node() {
        let plan = ChaosPlan {
            seed: 21,
            store_unavail_mtbf_cycles: 10_000,
            store_unavail_duration_cycles: 2_000,
            ..ChaosPlan::none()
        };
        let mut st = ChaosState::for_cluster(plan, 3, 2);
        for node in 0..3 {
            st.store[node].ensure_to(10_000_000);
        }
        assert_ne!(st.store[0].windows, st.store[1].windows);
        assert_ne!(st.store[1].windows, st.store[2].windows);
        // The single-node constructor is the 1-node cluster, stream for
        // stream (the golden byte-identity contract).
        let mut single = ChaosState::new(plan, 2);
        let mut one = ChaosState::for_cluster(plan, 1, 2);
        single.store[0].ensure_to(10_000_000);
        one.store[0].ensure_to(10_000_000);
        assert_eq!(single.store[0].windows, one.store[0].windows);
    }

    #[test]
    fn earliest_restart_is_min_over_down_cores() {
        let plan = ChaosPlan {
            seed: 13,
            crash_mtbf_cycles: 500,
            crash_repair_cycles: 2_000,
            ..ChaosPlan::none()
        };
        let mut st = ChaosState::new(plan, 4);
        // Find a time at which at least one core is down.
        let t = (0..1_000_000)
            .find(|&t| (0..4).any(|c| st.core_down(c, t)))
            .expect("some core goes down");
        let earliest = st.earliest_restart(t).expect("a core is down");
        for c in 0..4 {
            if let Some(r) = st.core_restart_after(c, t) {
                assert!(earliest <= r);
                assert!(r > t);
            }
        }
    }
}
