//! The chaos ledger: every injected failure and every recovery action,
//! counted so the `ignite-cluster-v2` conservation law is checkable.

/// Counters for one chaos-enabled cluster run.
///
/// The **conservation law** ([`ChaosStats::conserved`]) is the
/// schema's core guarantee: every submitted invocation either
/// completes or is dropped with a reason — failures may delay or
/// degrade work, but never lose it silently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Invocations that entered the scheduler (arrivals).
    pub submitted: u64,
    /// Invocations that eventually completed (any number of attempts).
    pub completed: u64,
    /// Completed invocations that needed more than one attempt.
    pub retried_to_success: u64,
    /// Dispatch attempts that failed (crash kills + dispatch drops).
    pub attempts_failed: u64,
    /// Attempts killed by a core crash mid-execution.
    pub crash_kills: u64,
    /// Attempts dropped before reaching a core.
    pub dispatch_drops: u64,
    /// Invocations dropped because their deadline expired.
    pub dropped_deadline: u64,
    /// Invocations dropped after exhausting `max_attempts`.
    pub dropped_retries_exhausted: u64,
    /// Completions degraded to cold because the store was unavailable.
    pub degraded_unavailable: u64,
    /// Completions degraded to cold by corrupt (undecodable) metadata.
    pub degraded_corrupt: u64,
    /// Completions degraded to cold by lost metadata regions.
    pub degraded_loss: u64,
    /// Completions that bypassed record/replay under an open breaker.
    pub degraded_breaker: u64,
    /// Completed attempts that ran inside a straggle window.
    pub straggled: u64,
    /// Metadata writebacks skipped because the store was unavailable.
    pub writeback_skipped: u64,
    /// Corrupt/lost regions evicted from the store on detection.
    pub store_regions_dropped: u64,
    /// Circuit-breaker open transitions (across all functions).
    pub breaker_opens: u64,
    /// Circuit-breaker close transitions (successful probes).
    pub breaker_closes: u64,
    /// Cycles lost to failed attempts (queue-to-failure time).
    pub retry_cycles: u64,
    /// Cycles spent waiting in backoff between attempts.
    pub backoff_cycles: u64,
}

impl ChaosStats {
    /// Total completions that ran degraded (cold instead of replay).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_unavailable
            + self.degraded_corrupt
            + self.degraded_loss
            + self.degraded_breaker
    }

    /// Total invocations dropped (with reason).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_deadline + self.dropped_retries_exhausted
    }

    /// The conservation law: `submitted == completed + dropped`.
    pub fn conserved(&self) -> bool {
        self.submitted == self.completed + self.dropped_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_balances() {
        let mut s = ChaosStats {
            submitted: 10,
            completed: 7,
            dropped_deadline: 2,
            ..ChaosStats::default()
        };
        assert!(!s.conserved());
        s.dropped_retries_exhausted = 1;
        assert!(s.conserved());
        assert_eq!(s.dropped_total(), 3);
    }

    #[test]
    fn degraded_total_sums_all_reasons() {
        let s = ChaosStats {
            degraded_unavailable: 1,
            degraded_corrupt: 2,
            degraded_loss: 3,
            degraded_breaker: 4,
            ..ChaosStats::default()
        };
        assert_eq!(s.degraded_total(), 10);
    }
}
