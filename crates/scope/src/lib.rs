//! `ignite-scope`: causal latency attribution, SLO burn-rate alerting,
//! and differential run analysis on top of the obs event stream.
//!
//! Three consumers of the artifacts the rest of the workspace already
//! produces:
//!
//! - [`ScopeAnalyzer`] is an [`ignite_obs::EventSink`] tee: it forwards
//!   every event to an inner sink (a `TraceBuffer`, or `NullSink` when
//!   no trace is wanted) while folding `Attribution` events into exact
//!   per-function latency breakdowns. Because the cluster simulator's
//!   attribution components are integer cycle counts that tile the
//!   end-to-end latency *exactly*, the analyzer's aggregates carry the
//!   same invariant: queue + dram + cold-front-end + store-miss +
//!   execution == latency, per invocation and in every sum.
//! - [`SloTracker`] (driven by the analyzer when an [`SloConfig`] is
//!   supplied) keeps multi-window burn rates over the attribution
//!   stream in pure integer arithmetic and emits `AlertFire` /
//!   `AlertResolve` events onto their own trace track.
//! - [`diff`] compares two runs — cluster reports, scope reports, or
//!   bench reports — and flags significant regressions/improvements,
//!   replacing ad-hoc percentage gates in CI.
//!
//! Everything here is deterministic: same events in, byte-identical
//! report out, in any process.

pub mod attribution;
pub mod diff;
pub mod report;
pub mod slo;

pub use attribution::{FunctionAttribution, InvocationAttribution, ScopeAnalyzer};
pub use diff::{diff, load_samples, workload_identity, DiffEntry, DiffReport, MetricSample};
pub use report::{record_scope_metrics, record_slo_metrics, ScopeReport, SCOPE_SCHEMA};
pub use slo::{SloConfig, SloTracker, Transition};
