//! Differential run analysis: compare two serialized reports and flag
//! significant regressions and improvements.
//!
//! [`load_samples`] auto-detects the input by schema tag — an
//! `ignite-cluster-v1` report, an `ignite-scope-v1` report, or an
//! `ignite-bench-v1` benchmark file — and flattens it into named
//! metric samples, each with a direction (is higher better?) and a
//! noise floor. [`diff`] then compares two sample sets: a change is
//! *significant* only when it exceeds both a relative threshold and
//! three times the combined noise floors, so bench jitter does not
//! read as a regression.

use std::fmt::Write as _;

use ignite_cluster::json::{self, Value};

/// One comparable metric from a report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Stable path-style name, e.g. `totals/p99_latency_cycles`.
    pub name: String,
    /// The value.
    pub value: f64,
    /// Noise floor (same units as `value`); 0 when unknown.
    pub noise: f64,
    /// Whether larger values are better (utilization, hit rate) or
    /// worse (latency, violations).
    pub higher_is_better: bool,
}

fn sample(name: String, value: f64, noise: f64, higher_is_better: bool) -> MetricSample {
    MetricSample { name, value, noise, higher_is_better }
}

fn num(obj: &[(String, Value)], key: &str) -> Option<f64> {
    json::get(obj, key).and_then(Value::as_f64)
}

fn cluster_samples(obj: &[(String, Value)]) -> Vec<MetricSample> {
    let mut out = Vec::new();
    if let Some(t) = json::get(obj, "totals").and_then(Value::as_object) {
        for (key, higher) in [
            ("mean_latency_cycles", false),
            ("p50_latency_cycles", false),
            ("p95_latency_cycles", false),
            ("p99_latency_cycles", false),
            ("makespan_cycles", false),
            ("mean_utilization", true),
        ] {
            if let Some(v) = num(t, key) {
                out.push(sample(format!("totals/{key}"), v, 0.0, higher));
            }
        }
    }
    if let Some(st) = json::get(obj, "store").and_then(Value::as_object) {
        if let Some(v) = num(st, "hit_rate") {
            out.push(sample("store/hit_rate".to_string(), v, 0.0, true));
        }
    }
    if let Some(fs) = json::get(obj, "functions").and_then(Value::as_array) {
        for f in fs {
            let Some(fo) = f.as_object() else { continue };
            let Some(abbr) = json::get(fo, "function").and_then(Value::as_str) else { continue };
            for (key, higher) in [("p99_latency_cycles", false), ("mean_service_cycles", false)] {
                if let Some(v) = num(fo, key) {
                    out.push(sample(format!("function/{abbr}/{key}"), v, 0.0, higher));
                }
            }
        }
    }
    out
}

fn scope_samples(obj: &[(String, Value)]) -> Vec<MetricSample> {
    let mut out = Vec::new();
    if let Some(t) = json::get(obj, "totals").and_then(Value::as_object) {
        let inv = num(t, "invocations").unwrap_or(0.0);
        if inv > 0.0 {
            for key in [
                "queue_cycles",
                "retry_cycles",
                "dram_cycles",
                "cold_frontend_cycles",
                "store_miss_cycles",
                "degraded_cycles",
                "execution_cycles",
                "latency_cycles",
            ] {
                if let Some(v) = num(t, key) {
                    out.push(sample(format!("totals/mean_{key}"), v / inv, 0.0, false));
                }
            }
        }
        for key in ["p50_latency_cycles", "p95_latency_cycles", "p99_latency_cycles"] {
            if let Some(v) = num(t, key) {
                out.push(sample(format!("totals/{key}"), v, 0.0, false));
            }
        }
        if let Some(v) = num(t, "slo_violations") {
            out.push(sample("totals/slo_violations".to_string(), v, 0.0, false));
        }
    }
    if let Some(fs) = json::get(obj, "functions").and_then(Value::as_array) {
        for f in fs {
            let Some(fo) = f.as_object() else { continue };
            let Some(abbr) = json::get(fo, "function").and_then(Value::as_str) else { continue };
            if let Some(v) = num(fo, "p99_latency_cycles") {
                out.push(sample(format!("function/{abbr}/p99_latency_cycles"), v, 0.0, false));
            }
            // Per-function mean attribution components, so a diff can
            // call a scheduler or keep-alive change a win or regression
            // *per function* (e.g. store-miss cycles dropping for hot
            // functions under affinity routing).
            let inv = num(fo, "invocations").unwrap_or(0.0);
            if inv > 0.0 {
                for key in [
                    "queue_cycles",
                    "retry_cycles",
                    "dram_cycles",
                    "cold_frontend_cycles",
                    "store_miss_cycles",
                    "degraded_cycles",
                    "execution_cycles",
                    "latency_cycles",
                ] {
                    if let Some(v) = num(fo, key) {
                        out.push(sample(
                            format!("function/{abbr}/mean_{key}"),
                            v / inv,
                            0.0,
                            false,
                        ));
                    }
                }
            }
        }
    }
    out
}

fn bench_samples(obj: &[(String, Value)]) -> Vec<MetricSample> {
    let mut out = Vec::new();
    if let Some(rs) = json::get(obj, "results").and_then(Value::as_array) {
        for r in rs {
            let Some(ro) = r.as_object() else { continue };
            let Some(name) = json::get(ro, "name").and_then(Value::as_str) else { continue };
            let Some(wall) = num(ro, "wall_ns") else { continue };
            let mad = num(ro, "mad_ns").unwrap_or(0.0);
            out.push(sample(format!("bench/{name}/wall_ns"), wall, mad, false));
        }
    }
    out
}

/// Flattens a serialized report into comparable samples, detecting the
/// schema from the document's `schema` tag.
pub fn load_samples(text: &str) -> Result<Vec<MetricSample>, String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("document is not an object")?;
    let schema =
        json::get(obj, "schema").and_then(Value::as_str).ok_or("document has no 'schema' tag")?;
    let samples = match schema {
        "ignite-cluster-v1" | "ignite-cluster-v2" => cluster_samples(obj),
        "ignite-scope-v1" => scope_samples(obj),
        "ignite-bench-v1" => bench_samples(obj),
        other => return Err(format!("unsupported schema '{other}'")),
    };
    if samples.is_empty() {
        return Err(format!("no comparable metrics in '{schema}' document"));
    }
    Ok(samples)
}

/// Extracts a compact workload identity from a serialized cluster
/// report, or `None` when the document carries no `workload`
/// fingerprint section (legacy reports, scope reports, bench files).
///
/// Two reports with different identities were produced by different
/// traffic shapes, so a metric diff between them compares apples to
/// oranges; `scope diff` refuses such pairs unless explicitly
/// overridden. The identity is the *configured* shape (the `--traffic`
/// spec plus arrival seed/rate/skew inputs and stream size), not the
/// measured statistics, so two runs of the same spec under different
/// policies still compare cleanly.
pub fn workload_identity(text: &str) -> Option<String> {
    let doc = json::parse(text).ok()?;
    let obj = doc.as_object()?;
    let workload = json::get(obj, "workload")?.as_object()?;
    let arrivals = json::get(workload, "arrivals").and_then(Value::as_f64)?;
    let functions = json::get(workload, "functions").and_then(Value::as_f64)?;
    let config = json::get(obj, "config").and_then(Value::as_object);
    let traffic =
        config.and_then(|c| json::get(c, "traffic")).and_then(Value::as_str).unwrap_or("(none)");
    let seed = config.and_then(|c| num(c, "seed")).unwrap_or(0.0);
    Some(format!("traffic={traffic} seed={seed} arrivals={arrivals} functions={functions}"))
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent (positive = increased).
    pub delta_pct: f64,
    /// Whether the change cleared both significance gates.
    pub significant: bool,
    /// Significant *and* in the worse direction.
    pub regression: bool,
    /// Significant *and* in the better direction.
    pub improvement: bool,
}

/// The result of comparing two sample sets.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every metric present in both inputs, in baseline order.
    pub entries: Vec<DiffEntry>,
    /// Metric names only in the baseline.
    pub removed: Vec<String>,
    /// Metric names only in the new run.
    pub added: Vec<String>,
}

impl DiffReport {
    /// Number of significant regressions.
    pub fn regressions(&self) -> usize {
        self.entries.iter().filter(|e| e.regression).count()
    }

    /// Number of significant improvements.
    pub fn improvements(&self) -> usize {
        self.entries.iter().filter(|e| e.improvement).count()
    }

    /// Human-readable summary, significant changes first.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "scope diff: {} metrics compared, {} regressions, {} improvements",
            self.entries.len(),
            self.regressions(),
            self.improvements()
        );
        for e in self.entries.iter().filter(|e| e.significant) {
            let tag = if e.regression { "REGRESSION " } else { "improvement" };
            let _ = writeln!(
                s,
                "  {tag} {:<44} {:>14.2} -> {:>14.2} ({:+.2}%)",
                e.name, e.old, e.new, e.delta_pct
            );
        }
        for name in &self.removed {
            let _ = writeln!(s, "  removed     {name}");
        }
        for name in &self.added {
            let _ = writeln!(s, "  added       {name}");
        }
        s
    }
}

/// Compares two sample sets. A change is significant when its absolute
/// delta exceeds `threshold_pct` percent of the baseline *and* three
/// times the combined noise floors; direction then decides regression
/// vs improvement.
pub fn diff(old: &[MetricSample], new: &[MetricSample], threshold_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for o in old {
        let Some(n) = new.iter().find(|n| n.name == o.name) else {
            report.removed.push(o.name.clone());
            continue;
        };
        if o.value == 0.0 && n.value == 0.0 {
            report.entries.push(DiffEntry {
                name: o.name.clone(),
                old: 0.0,
                new: 0.0,
                delta_pct: 0.0,
                significant: false,
                regression: false,
                improvement: false,
            });
            continue;
        }
        let delta = n.value - o.value;
        let delta_pct =
            if o.value == 0.0 { 100.0 * delta.signum() } else { 100.0 * delta / o.value };
        let noise_gate = 3.0 * (o.noise + n.noise);
        // An exactly-zero baseline pins delta_pct to ±100, so the
        // percent threshold is no test at all; without a noise floor to
        // supply an absolute scale either, any nonzero jitter would be
        // flagged. Demand at least one real yardstick.
        let measurable = o.value != 0.0 || noise_gate > 0.0;
        let significant = measurable && delta_pct.abs() > threshold_pct && delta.abs() > noise_gate;
        let worse = if o.higher_is_better { delta < 0.0 } else { delta > 0.0 };
        report.entries.push(DiffEntry {
            name: o.name.clone(),
            old: o.value,
            new: n.value,
            delta_pct,
            significant,
            regression: significant && worse,
            improvement: significant && !worse,
        });
    }
    for n in new {
        if !old.iter().any(|o| o.name == n.name) {
            report.added.push(n.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str, value: f64) -> MetricSample {
        sample(name.to_string(), value, 0.0, false)
    }

    #[test]
    fn self_diff_is_clean() {
        let a = vec![s("x", 10.0), s("y", 0.0)];
        let d = diff(&a, &a, 5.0);
        assert_eq!(d.regressions(), 0);
        assert_eq!(d.improvements(), 0);
        assert_eq!(d.entries.len(), 2);
    }

    #[test]
    fn direction_decides_regression() {
        let old = vec![s("latency", 100.0)];
        let new = vec![s("latency", 150.0)];
        let d = diff(&old, &new, 10.0);
        assert_eq!(d.regressions(), 1);
        // Lower latency is an improvement.
        let d = diff(&new, &old, 10.0);
        assert_eq!(d.improvements(), 1);
        // Higher-is-better flips the call.
        let old = vec![sample("util".into(), 0.5, 0.0, true)];
        let new = vec![sample("util".into(), 0.9, 0.0, true)];
        assert_eq!(diff(&old, &new, 10.0).improvements(), 1);
        assert_eq!(diff(&new, &old, 10.0).regressions(), 1);
    }

    #[test]
    fn zero_baseline_without_a_noise_floor_is_not_significant() {
        // A component that is exactly zero in the baseline offers no
        // scale to judge a percent delta against: delta_pct pins to
        // ±100 and (for noise-free report-derived samples) the noise
        // gate is also zero, so 0 -> 1e-9 used to read as a significant
        // 100% regression.
        let old = vec![s("function/mdsvc/mean_degraded_cycles", 0.0)];
        let new = vec![s("function/mdsvc/mean_degraded_cycles", 1e-9)];
        let d = diff(&old, &new, 5.0);
        assert_eq!(d.regressions(), 0, "zero-baseline jitter must not be significant");
        let e = &d.entries[0];
        assert_eq!(e.delta_pct, 100.0);
        assert!(!e.significant);
        // A zero baseline WITH a noise floor still flags a change that
        // clears it — the gate supplies the missing scale.
        let old = vec![sample("x".into(), 0.0, 1.0, false)];
        let new = vec![sample("x".into(), 10.0, 1.0, false)];
        assert_eq!(diff(&old, &new, 5.0).regressions(), 1);
    }

    #[test]
    fn noise_floor_suppresses_jitter() {
        let old = vec![sample("bench/x/wall_ns".into(), 1_000.0, 200.0, false)];
        let new = vec![sample("bench/x/wall_ns".into(), 1_500.0, 200.0, false)];
        // +50% but within 3*(200+200) = 1200 of noise: not significant.
        let d = diff(&old, &new, 25.0);
        assert_eq!(d.regressions(), 0);
        // Same delta with tight noise is flagged.
        let old = vec![sample("bench/x/wall_ns".into(), 1_000.0, 10.0, false)];
        let new = vec![sample("bench/x/wall_ns".into(), 1_500.0, 10.0, false)];
        assert_eq!(diff(&old, &new, 25.0).regressions(), 1);
    }

    #[test]
    fn added_and_removed_metrics_are_listed_not_compared() {
        let old = vec![s("a", 1.0)];
        let new = vec![s("b", 1.0)];
        let d = diff(&old, &new, 5.0);
        assert!(d.entries.is_empty());
        assert_eq!(d.removed, vec!["a".to_string()]);
        assert_eq!(d.added, vec!["b".to_string()]);
        let text = d.to_text();
        assert!(text.contains("removed") && text.contains("added"));
    }

    #[test]
    fn loads_bench_schema() {
        let text = r#"{"schema": "ignite-bench-v1", "results": [
            {"name": "decode", "kind": "micro", "wall_ns": 1200, "mad_ns": 15}
        ]}"#;
        let samples = load_samples(text).expect("bench samples");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "bench/decode/wall_ns");
        assert_eq!(samples[0].noise, 15.0);
        assert!(!samples[0].higher_is_better);
    }

    #[test]
    fn scope_samples_carry_per_function_components() {
        let text = r#"{"schema": "ignite-scope-v1", "totals": {"invocations": 4,
            "queue_cycles": 8, "dram_cycles": 4, "cold_frontend_cycles": 0,
            "store_miss_cycles": 12, "degraded_cycles": 0, "execution_cycles": 20,
            "latency_cycles": 44, "p50_latency_cycles": 10, "p95_latency_cycles": 11,
            "p99_latency_cycles": 12},
            "functions": [{"function": "mdsvc", "invocations": 4,
            "queue_cycles": 8, "dram_cycles": 4, "cold_frontend_cycles": 0,
            "store_miss_cycles": 12, "degraded_cycles": 0, "execution_cycles": 20,
            "latency_cycles": 44, "p99_latency_cycles": 12}]}"#;
        let samples = load_samples(text).expect("scope samples");
        let miss = samples
            .iter()
            .find(|s| s.name == "function/mdsvc/mean_store_miss_cycles")
            .expect("per-function store-miss sample");
        assert_eq!(miss.value, 3.0);
        assert!(!miss.higher_is_better);
        // A scheduler swap that halves mdsvc's store misses reads as a
        // per-function improvement.
        let better = text.replace("\"store_miss_cycles\": 12", "\"store_miss_cycles\": 4");
        let d = diff(&samples, &load_samples(&better).unwrap(), 5.0);
        assert!(d
            .entries
            .iter()
            .any(|e| e.name == "function/mdsvc/mean_store_miss_cycles" && e.improvement));
    }

    #[test]
    fn workload_identity_extracts_configured_shape() {
        let report = r#"{"schema": "ignite-cluster-v1",
            "config": {"seed": 42, "traffic": "mmpp:mults=1/6,dwells=300000/60000"},
            "workload": {"schema": "ignite-workload-v1", "arrivals": 50, "functions": 20}}"#;
        let id = workload_identity(report).expect("identity");
        assert_eq!(
            id,
            "traffic=mmpp:mults=1/6,dwells=300000/60000 seed=42 arrivals=50 functions=20"
        );
        // Same workload under a different policy keeps the identity:
        // nothing outside config/workload participates.
        let other = report.replace("ignite-cluster-v1", "ignite-cluster-v2");
        assert_eq!(workload_identity(&other).as_deref(), Some(id.as_str()));
        // A different traffic spec, arrival count, or seed changes it.
        for (from, to) in
            [("mmpp:", "diurnal:"), ("\"arrivals\": 50", "\"arrivals\": 51"), ("42", "43")]
        {
            assert_ne!(workload_identity(&report.replace(from, to)), Some(id.clone()));
        }
    }

    #[test]
    fn workload_identity_is_none_without_fingerprint() {
        assert_eq!(workload_identity(r#"{"schema": "ignite-cluster-v1", "config": {}}"#), None);
        assert_eq!(workload_identity(r#"{"schema": "ignite-bench-v1", "results": []}"#), None);
        assert_eq!(workload_identity("not json"), None);
    }

    #[test]
    fn rejects_unknown_schema() {
        assert!(load_samples(r#"{"schema": "nope"}"#).is_err());
        assert!(load_samples("{}").is_err());
    }
}
