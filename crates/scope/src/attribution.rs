//! The [`ScopeAnalyzer`] tee sink: exact per-function latency
//! attribution folded live off the event stream.

use std::collections::BTreeMap;

use ignite_obs::{Event, EventKind, EventSink, QuantileSketch, Track};

use crate::slo::{SloConfig, SloTracker, Transition};

/// One invocation's causal latency breakdown, copied out of its
/// `Attribution` event. The seven components sum exactly to
/// `latency_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationAttribution {
    /// Function index in suite order.
    pub function: u32,
    /// Completion cycle.
    pub ts: u64,
    /// Arrival → dispatch wait.
    pub queue_cycles: u64,
    /// Cycles lost to failed attempts and retry backoff (chaos runs
    /// only; 0 otherwise).
    pub retry_cycles: u64,
    /// Record/replay metadata DRAM transfer.
    pub dram_cycles: u64,
    /// Cold front-end stalls (store hit replaying, or Ignite off).
    pub cold_frontend_cycles: u64,
    /// Front-end stalls re-paid because the store missed and the
    /// invocation had to re-record.
    pub store_miss_cycles: u64,
    /// Front-end stalls paid because chaos degraded replay away
    /// (store unavailable/corrupt/lost region, or breaker open).
    pub degraded_cycles: u64,
    /// Steady-state execution.
    pub execution_cycles: u64,
    /// End-to-end latency (arrival → completion).
    pub latency_cycles: u64,
}

impl InvocationAttribution {
    /// Sum of the seven components; equals `latency_cycles` by the
    /// attribution invariant.
    pub fn component_sum(&self) -> u64 {
        self.queue_cycles
            + self.retry_cycles
            + self.dram_cycles
            + self.cold_frontend_cycles
            + self.store_miss_cycles
            + self.degraded_cycles
            + self.execution_cycles
    }
}

/// Per-function attribution aggregates. All cycle fields are sums over
/// the function's completed invocations.
#[derive(Debug, Clone, Default)]
pub struct FunctionAttribution {
    /// Invocations attributed.
    pub invocations: u64,
    /// Summed queueing cycles.
    pub queue_cycles: u64,
    /// Summed retry/backoff cycles.
    pub retry_cycles: u64,
    /// Summed metadata DRAM cycles.
    pub dram_cycles: u64,
    /// Summed cold front-end cycles.
    pub cold_frontend_cycles: u64,
    /// Summed store-miss re-record cycles.
    pub store_miss_cycles: u64,
    /// Summed degraded-mode front-end cycles.
    pub degraded_cycles: u64,
    /// Summed execution cycles.
    pub execution_cycles: u64,
    /// Summed end-to-end latency.
    pub latency_cycles: u64,
    /// Streaming latency quantiles.
    pub latency: QuantileSketch,
    /// SLO violations (0 when no SLO is configured).
    pub violations: u64,
    /// Alert fire transitions.
    pub alert_fires: u64,
    /// Alert resolve transitions.
    pub alert_resolves: u64,
}

impl FunctionAttribution {
    fn ingest(&mut self, a: &InvocationAttribution) {
        self.invocations += 1;
        self.queue_cycles += a.queue_cycles;
        self.retry_cycles += a.retry_cycles;
        self.dram_cycles += a.dram_cycles;
        self.cold_frontend_cycles += a.cold_frontend_cycles;
        self.store_miss_cycles += a.store_miss_cycles;
        self.degraded_cycles += a.degraded_cycles;
        self.execution_cycles += a.execution_cycles;
        self.latency_cycles += a.latency_cycles;
        self.latency.observe(a.latency_cycles);
    }
}

/// An [`EventSink`] that forwards every event to an inner sink while
/// folding `Attribution` events into per-function aggregates, and —
/// when an [`SloConfig`] is present — driving a burn-rate tracker per
/// function whose alert transitions are emitted into the inner sink on
/// [`Track::Alerts`].
///
/// Wrap a `TraceBuffer` to get both a trace and attribution, or a
/// `NullSink` for attribution alone. The analyzer itself is always
/// enabled; the inner sink's own `enabled()` still gates forwarding, so
/// wrapping `NullSink` costs no buffering.
#[derive(Debug, Default)]
pub struct ScopeAnalyzer<S: EventSink> {
    inner: S,
    slo: Option<SloConfig>,
    per_function: BTreeMap<u32, FunctionAttribution>,
    trackers: BTreeMap<u32, SloTracker>,
    invocations: Vec<InvocationAttribution>,
    overall: QuantileSketch,
}

impl<S: EventSink> ScopeAnalyzer<S> {
    /// Wraps an inner sink, with no SLO tracking.
    pub fn new(inner: S) -> Self {
        ScopeAnalyzer {
            inner,
            slo: None,
            per_function: BTreeMap::new(),
            trackers: BTreeMap::new(),
            invocations: Vec::new(),
            overall: QuantileSketch::new(),
        }
    }

    /// Enables burn-rate alerting under the given SLO.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// The SLO in force, if any.
    pub fn slo(&self) -> Option<&SloConfig> {
        self.slo.as_ref()
    }

    /// Every attributed invocation, in completion-event (dispatch)
    /// order.
    pub fn invocations(&self) -> &[InvocationAttribution] {
        &self.invocations
    }

    /// Per-function aggregates, keyed by function index.
    pub fn per_function(&self) -> &BTreeMap<u32, FunctionAttribution> {
        &self.per_function
    }

    /// Per-function burn-rate trackers, keyed by function index.
    /// Populated only when an SLO is configured; the live
    /// [`SloTracker::current_burn`] gauges feed the metrics exposition
    /// and the policy controller.
    pub fn trackers(&self) -> &BTreeMap<u32, SloTracker> {
        &self.trackers
    }

    /// Latency sketch over all invocations.
    pub fn overall(&self) -> &QuantileSketch {
        &self.overall
    }

    /// Total attributed invocations.
    pub fn total_invocations(&self) -> u64 {
        self.overall.count()
    }

    /// Cumulative SLO violations across all functions.
    pub fn total_violations(&self) -> u64 {
        self.per_function.values().map(|f| f.violations).sum()
    }

    /// Hands back the inner sink (e.g. to export the trace).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Borrows the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: EventSink> EventSink for ScopeAnalyzer<S> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if self.inner.enabled() {
            self.inner.record(event);
        }
        let EventKind::Attribution {
            function,
            queue_cycles,
            retry_cycles,
            dram_cycles,
            cold_frontend_cycles,
            store_miss_cycles,
            degraded_cycles,
            execution_cycles,
            latency_cycles,
        } = event.kind
        else {
            return;
        };
        let a = InvocationAttribution {
            function,
            ts: event.ts,
            queue_cycles,
            retry_cycles,
            dram_cycles,
            cold_frontend_cycles,
            store_miss_cycles,
            degraded_cycles,
            execution_cycles,
            latency_cycles,
        };
        debug_assert_eq!(a.component_sum(), a.latency_cycles, "attribution components must tile");
        let agg = self.per_function.entry(function).or_default();
        agg.ingest(&a);
        self.overall.observe(latency_cycles);
        self.invocations.push(a);
        if let Some(cfg) = self.slo {
            let tracker = self.trackers.entry(function).or_default();
            if let Some(tr) = tracker.observe(&cfg, event.ts, latency_cycles) {
                let agg = self.per_function.entry(function).or_default();
                agg.violations = tracker.violations();
                let kind = match tr {
                    Transition::Fire { burn_milli } => {
                        agg.alert_fires += 1;
                        EventKind::AlertFire { function, burn_milli }
                    }
                    Transition::Resolve { burn_milli } => {
                        agg.alert_resolves += 1;
                        EventKind::AlertResolve { function, burn_milli }
                    }
                };
                if self.inner.enabled() {
                    self.inner.record(Event { ts: event.ts, dur: 0, track: Track::Alerts, kind });
                }
            } else {
                self.per_function.get_mut(&function).expect("just inserted").violations =
                    tracker.violations();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_obs::{NullSink, TraceBuffer};

    fn attr_event(function: u32, ts: u64, queue: u64, exec: u64) -> Event {
        Event {
            ts,
            dur: 0,
            track: Track::Cluster,
            kind: EventKind::Attribution {
                function,
                queue_cycles: queue,
                retry_cycles: 0,
                dram_cycles: 0,
                cold_frontend_cycles: 0,
                store_miss_cycles: 0,
                degraded_cycles: 0,
                execution_cycles: exec,
                latency_cycles: queue + exec,
            },
        }
    }

    #[test]
    fn aggregates_per_function() {
        let mut an = ScopeAnalyzer::new(NullSink);
        an.record(attr_event(0, 100, 10, 40));
        an.record(attr_event(1, 200, 0, 70));
        an.record(attr_event(0, 300, 30, 20));
        assert_eq!(an.total_invocations(), 3);
        assert_eq!(an.invocations().len(), 3);
        let f0 = &an.per_function()[&0];
        assert_eq!(f0.invocations, 2);
        assert_eq!(f0.queue_cycles, 40);
        assert_eq!(f0.execution_cycles, 60);
        assert_eq!(f0.latency_cycles, 100);
        assert_eq!(f0.latency.count(), 2);
        for a in an.invocations() {
            assert_eq!(a.component_sum(), a.latency_cycles);
        }
    }

    #[test]
    fn non_attribution_events_pass_through_untouched() {
        let mut an = ScopeAnalyzer::new(TraceBuffer::new(16));
        let ev = Event {
            ts: 5,
            dur: 0,
            track: Track::Cluster,
            kind: EventKind::Arrival { function: 3 },
        };
        an.record(ev);
        assert_eq!(an.total_invocations(), 0);
        let buf = an.into_inner();
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.iter().next(), Some(&ev));
    }

    #[test]
    fn alert_transitions_reach_the_inner_sink_on_the_alerts_track() {
        let slo = SloConfig {
            threshold_cycles: 50,
            objective_milli: 500,
            fast_window_cycles: 1_000,
            slow_window_cycles: 4_000,
            burn_milli: 2_000,
            min_count: 2,
        };
        let mut an = ScopeAnalyzer::new(TraceBuffer::new(64)).with_slo(slo);
        for i in 0..4u64 {
            an.record(attr_event(0, 100 * (i + 1), 0, 500));
        }
        assert!(an.per_function()[&0].alert_fires >= 1);
        assert_eq!(an.per_function()[&0].violations, 4);
        let buf = an.into_inner();
        let fires: Vec<&Event> =
            buf.iter().filter(|e| matches!(e.kind, EventKind::AlertFire { .. })).collect();
        assert!(!fires.is_empty());
        assert!(fires.iter().all(|e| e.track == Track::Alerts));
    }

    #[test]
    fn null_inner_sink_still_aggregates() {
        let mut an = ScopeAnalyzer::new(NullSink).with_slo(SloConfig {
            min_count: 1,
            threshold_cycles: 1,
            ..SloConfig::default()
        });
        an.record(attr_event(7, 10, 0, 100));
        assert_eq!(an.per_function()[&7].violations, 1);
    }
}
