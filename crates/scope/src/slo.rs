//! Multi-window burn-rate SLO tracking over the attribution stream.
//!
//! The SLO is availability-style: a fraction `objective_milli / 1000`
//! of invocations must complete under `threshold_cycles`. The tracker
//! follows the multi-window burn-rate recipe: an alert fires only when
//! *both* a fast window (quick detection, quick resolution) and a slow
//! window (resistance to blips) burn error budget faster than
//! `burn_milli / 1000`×. All arithmetic is integer, so two processes
//! fed the same stream make identical decisions.
//!
//! Attribution events are stamped with *completion* time but arrive in
//! *dispatch* order, so timestamps are not monotone. The tracker keeps
//! a watermark (the maximum timestamp seen) and evaluates windows
//! against it; late events inside the slow window still count, and
//! events older than the slow window are dropped.

/// SLO definition plus burn-rate alert policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Latency above this is an SLO violation ("bad" invocation).
    pub threshold_cycles: u64,
    /// Objective in milli-units: 950 means 95.0% of invocations must
    /// complete under the threshold. Must be < 1000.
    pub objective_milli: u32,
    /// Fast alert window, in cycles.
    pub fast_window_cycles: u64,
    /// Slow alert window, in cycles. Should be >= the fast window.
    pub slow_window_cycles: u64,
    /// Fire when both windows burn budget at >= this rate, in
    /// milli-units: 2000 means 2x the sustainable rate.
    pub burn_milli: u64,
    /// Minimum completions in the slow window before alerting (keeps a
    /// single bad invocation at startup from firing).
    pub min_count: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            threshold_cycles: 1_000_000,
            objective_milli: 950,
            fast_window_cycles: 200_000,
            slow_window_cycles: 800_000,
            burn_milli: 2_000,
            min_count: 10,
        }
    }
}

/// An alert state change, to be emitted as a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Burn rate crossed above the policy in both windows.
    Fire {
        /// Fast-window burn rate at the transition, in milli-units.
        burn_milli: u64,
    },
    /// Burn rate dropped back below the policy.
    Resolve {
        /// Fast-window burn rate at the transition, in milli-units.
        burn_milli: u64,
    },
}

/// Burn-rate state for one function.
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    /// (completion cycle, violated) samples within the slow window of
    /// the watermark. Small (bounded by the slow window's traffic), so
    /// linear scans per event are fine.
    samples: Vec<(u64, bool)>,
    /// Maximum completion timestamp seen.
    watermark: u64,
    /// Cumulative violations (never evicted).
    violations: u64,
    firing: bool,
}

/// Burn rate in milli-units: (bad/total) / (error budget fraction).
/// 1000 means violations arrive exactly at the sustainable rate.
fn burn_milli(bad: u64, total: u64, objective_milli: u32) -> u64 {
    if total == 0 {
        return 0;
    }
    let budget = u64::from(1000 - objective_milli.min(999)).max(1);
    let num = u128::from(bad) * 1_000_000;
    let den = u128::from(total) * u128::from(budget);
    (num / den) as u64
}

impl SloTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Cumulative SLO violations observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Feeds one completion and returns the alert transition it caused,
    /// if any.
    pub fn observe(&mut self, cfg: &SloConfig, ts: u64, latency_cycles: u64) -> Option<Transition> {
        let bad = latency_cycles > cfg.threshold_cycles;
        if bad {
            self.violations += 1;
        }
        self.watermark = self.watermark.max(ts);
        self.samples.push((ts, bad));
        let slow_floor = self.watermark.saturating_sub(cfg.slow_window_cycles);
        self.samples.retain(|&(t, _)| t >= slow_floor);

        let fast_floor = self.watermark.saturating_sub(cfg.fast_window_cycles);
        let mut fast = (0u64, 0u64);
        let mut slow = (0u64, 0u64);
        for &(t, b) in &self.samples {
            slow.1 += 1;
            slow.0 += u64::from(b);
            if t >= fast_floor {
                fast.1 += 1;
                fast.0 += u64::from(b);
            }
        }
        let fast_burn = burn_milli(fast.0, fast.1, cfg.objective_milli);
        let slow_burn = burn_milli(slow.0, slow.1, cfg.objective_milli);
        let over =
            fast_burn >= cfg.burn_milli && slow_burn >= cfg.burn_milli && slow.1 >= cfg.min_count;
        if over != self.firing {
            self.firing = over;
            return Some(if over {
                Transition::Fire { burn_milli: fast_burn }
            } else {
                Transition::Resolve { burn_milli: fast_burn }
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> SloConfig {
        // Every invocation over 100 cycles is bad; alert after 4
        // completions at >= 2x burn.
        SloConfig {
            threshold_cycles: 100,
            objective_milli: 500,
            fast_window_cycles: 1_000,
            slow_window_cycles: 4_000,
            burn_milli: 2_000,
            min_count: 4,
        }
    }

    #[test]
    fn burn_rate_math() {
        // 5% bad against a 95% objective is exactly sustainable: 1000.
        assert_eq!(burn_milli(5, 100, 950), 1000);
        // 10% bad burns twice the budget.
        assert_eq!(burn_milli(10, 100, 950), 2000);
        assert_eq!(burn_milli(0, 100, 950), 0);
        assert_eq!(burn_milli(0, 0, 950), 0);
    }

    #[test]
    fn fires_on_sustained_violation_and_resolves() {
        let cfg = tight();
        let mut t = SloTracker::new();
        let mut fired = false;
        for i in 0..8 {
            match t.observe(&cfg, 100 * (i + 1), 500) {
                Some(Transition::Fire { burn_milli }) => {
                    fired = true;
                    assert!(burn_milli >= cfg.burn_milli);
                }
                Some(Transition::Resolve { .. }) => panic!("resolved while violating"),
                None => {}
            }
        }
        assert!(fired, "sustained violations must fire");
        assert!(t.firing());
        assert_eq!(t.violations(), 8);
        // Healthy traffic far in the future empties both windows.
        let mut resolved = false;
        for i in 0..8 {
            if let Some(Transition::Resolve { .. }) = t.observe(&cfg, 100_000 + 100 * i, 1) {
                resolved = true;
            }
        }
        assert!(resolved, "healthy traffic must resolve");
        assert!(!t.firing());
    }

    #[test]
    fn min_count_suppresses_startup_blip() {
        let cfg = tight();
        let mut t = SloTracker::new();
        // Three bad completions: burn is maximal but below min_count.
        for i in 0..3 {
            assert_eq!(t.observe(&cfg, 100 * (i + 1), 500), None);
        }
        assert!(!t.firing());
    }

    #[test]
    fn out_of_order_timestamps_count_within_window() {
        let cfg = tight();
        let mut t = SloTracker::new();
        // Watermark jumps ahead, then stragglers land inside the slow
        // window; they must still contribute.
        t.observe(&cfg, 5_000, 500);
        t.observe(&cfg, 4_900, 500);
        t.observe(&cfg, 4_800, 500);
        let got = t.observe(&cfg, 4_700, 500);
        assert!(matches!(got, Some(Transition::Fire { .. })));
    }

    #[test]
    fn determinism() {
        let cfg = SloConfig::default();
        let run = || {
            let mut t = SloTracker::new();
            let mut transitions = Vec::new();
            for i in 0u64..500 {
                let lat = if i % 7 == 0 { 2_000_000 } else { 10_000 };
                if let Some(tr) = t.observe(&cfg, i * 3_001, lat) {
                    transitions.push((i, tr));
                }
            }
            transitions
        };
        assert_eq!(run(), run());
    }
}
