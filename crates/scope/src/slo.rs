//! Multi-window burn-rate SLO tracking over the attribution stream.
//!
//! The SLO is availability-style: a fraction `objective_milli / 1000`
//! of invocations must complete under `threshold_cycles`. The tracker
//! follows the multi-window burn-rate recipe: an alert fires only when
//! *both* a fast window (quick detection, quick resolution) and a slow
//! window (resistance to blips) burn error budget faster than
//! `burn_milli / 1000`×. All arithmetic is integer, so two processes
//! fed the same stream make identical decisions.
//!
//! Attribution events are stamped with *completion* time but arrive in
//! *dispatch* order, so timestamps are not monotone. The tracker keeps
//! a watermark (the maximum timestamp seen) and evaluates windows
//! against it; late events inside the slow window still count, and
//! events older than the slow window are dropped.

/// SLO definition plus burn-rate alert policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Latency above this is an SLO violation ("bad" invocation).
    pub threshold_cycles: u64,
    /// Objective in milli-units: 950 means 95.0% of invocations must
    /// complete under the threshold. Must be < 1000.
    pub objective_milli: u32,
    /// Fast alert window, in cycles.
    pub fast_window_cycles: u64,
    /// Slow alert window, in cycles. Should be >= the fast window.
    pub slow_window_cycles: u64,
    /// Fire when both windows burn budget at >= this rate, in
    /// milli-units: 2000 means 2x the sustainable rate.
    pub burn_milli: u64,
    /// Minimum completions in the slow window before alerting (keeps a
    /// single bad invocation at startup from firing).
    pub min_count: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            threshold_cycles: 1_000_000,
            objective_milli: 950,
            fast_window_cycles: 200_000,
            slow_window_cycles: 800_000,
            burn_milli: 2_000,
            min_count: 10,
        }
    }
}

/// An alert state change, to be emitted as a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Burn rate crossed above the policy in both windows.
    Fire {
        /// Fast-window burn rate at the transition, in milli-units.
        burn_milli: u64,
    },
    /// Burn rate dropped back below the policy.
    Resolve {
        /// Fast-window burn rate at the transition, in milli-units.
        burn_milli: u64,
    },
}

/// Burn-rate state for one function.
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    /// (completion cycle, violated) samples within the slow window of
    /// the watermark. Small (bounded by the slow window's traffic), so
    /// linear scans per event are fine.
    samples: Vec<(u64, bool)>,
    /// Maximum completion timestamp seen.
    watermark: u64,
    /// Cumulative violations (never evicted).
    violations: u64,
    firing: bool,
}

/// Burn rate in milli-units: (bad/total) / (error budget fraction).
/// 1000 means violations arrive exactly at the sustainable rate.
fn burn_milli(bad: u64, total: u64, objective_milli: u32) -> u64 {
    if total == 0 {
        return 0;
    }
    let budget = u64::from(1000 - objective_milli.min(999)).max(1);
    let num = u128::from(bad) * 1_000_000;
    let den = u128::from(total) * u128::from(budget);
    // The u128 product cannot overflow (u64 × 10^6 and u64 × 10^3 both
    // fit), and with the tracker's structural bound `bad <= total` the
    // quotient is at most 10^6. The saturation guards the cast for
    // out-of-contract callers (`bad > total`) instead of silently
    // truncating.
    (num / den).min(u128::from(u64::MAX)) as u64
}

impl SloTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Cumulative SLO violations observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// (bad, total) tallies for the fast and slow windows against the
    /// current watermark.
    fn windows(&self, cfg: &SloConfig) -> ((u64, u64), (u64, u64)) {
        let fast_floor = self.watermark.saturating_sub(cfg.fast_window_cycles);
        let mut fast = (0u64, 0u64);
        let mut slow = (0u64, 0u64);
        for &(t, b) in &self.samples {
            slow.1 += 1;
            slow.0 += u64::from(b);
            if t >= fast_floor {
                fast.1 += 1;
                fast.0 += u64::from(b);
            }
        }
        (fast, slow)
    }

    /// The (fast, slow) burn rates at the current watermark, in
    /// milli-units — the live gauges the metrics exposition and the
    /// policy controller read between transitions.
    pub fn current_burn(&self, cfg: &SloConfig) -> (u64, u64) {
        let (fast, slow) = self.windows(cfg);
        (
            burn_milli(fast.0, fast.1, cfg.objective_milli),
            burn_milli(slow.0, slow.1, cfg.objective_milli),
        )
    }

    /// Feeds one completion and returns the alert transition it caused,
    /// if any.
    pub fn observe(&mut self, cfg: &SloConfig, ts: u64, latency_cycles: u64) -> Option<Transition> {
        let bad = latency_cycles > cfg.threshold_cycles;
        if bad {
            self.violations += 1;
        }
        self.watermark = self.watermark.max(ts);
        self.samples.push((ts, bad));
        let slow_floor = self.watermark.saturating_sub(cfg.slow_window_cycles);
        self.samples.retain(|&(t, _)| t >= slow_floor);

        let (fast, slow) = self.windows(cfg);
        let fast_burn = burn_milli(fast.0, fast.1, cfg.objective_milli);
        let slow_burn = burn_milli(slow.0, slow.1, cfg.objective_milli);
        let over =
            fast_burn >= cfg.burn_milli && slow_burn >= cfg.burn_milli && slow.1 >= cfg.min_count;
        if over != self.firing {
            self.firing = over;
            return Some(if over {
                Transition::Fire { burn_milli: fast_burn }
            } else {
                Transition::Resolve { burn_milli: fast_burn }
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> SloConfig {
        // Every invocation over 100 cycles is bad; alert after 4
        // completions at >= 2x burn.
        SloConfig {
            threshold_cycles: 100,
            objective_milli: 500,
            fast_window_cycles: 1_000,
            slow_window_cycles: 4_000,
            burn_milli: 2_000,
            min_count: 4,
        }
    }

    #[test]
    fn burn_rate_math() {
        // 5% bad against a 95% objective is exactly sustainable: 1000.
        assert_eq!(burn_milli(5, 100, 950), 1000);
        // 10% bad burns twice the budget.
        assert_eq!(burn_milli(10, 100, 950), 2000);
        assert_eq!(burn_milli(0, 100, 950), 0);
        assert_eq!(burn_milli(0, 0, 950), 0);
    }

    #[test]
    fn fires_on_sustained_violation_and_resolves() {
        let cfg = tight();
        let mut t = SloTracker::new();
        let mut fired = false;
        for i in 0..8 {
            match t.observe(&cfg, 100 * (i + 1), 500) {
                Some(Transition::Fire { burn_milli }) => {
                    fired = true;
                    assert!(burn_milli >= cfg.burn_milli);
                }
                Some(Transition::Resolve { .. }) => panic!("resolved while violating"),
                None => {}
            }
        }
        assert!(fired, "sustained violations must fire");
        assert!(t.firing());
        assert_eq!(t.violations(), 8);
        // Healthy traffic far in the future empties both windows.
        let mut resolved = false;
        for i in 0..8 {
            if let Some(Transition::Resolve { .. }) = t.observe(&cfg, 100_000 + 100 * i, 1) {
                resolved = true;
            }
        }
        assert!(resolved, "healthy traffic must resolve");
        assert!(!t.firing());
    }

    #[test]
    fn min_count_suppresses_startup_blip() {
        let cfg = tight();
        let mut t = SloTracker::new();
        // Three bad completions: burn is maximal but below min_count.
        for i in 0..3 {
            assert_eq!(t.observe(&cfg, 100 * (i + 1), 500), None);
        }
        assert!(!t.firing());
    }

    #[test]
    fn out_of_order_timestamps_count_within_window() {
        let cfg = tight();
        let mut t = SloTracker::new();
        // Watermark jumps ahead, then stragglers land inside the slow
        // window; they must still contribute.
        t.observe(&cfg, 5_000, 500);
        t.observe(&cfg, 4_900, 500);
        t.observe(&cfg, 4_800, 500);
        let got = t.observe(&cfg, 4_700, 500);
        assert!(matches!(got, Some(Transition::Fire { .. })));
    }

    #[test]
    fn burn_rate_math_pins_saturation_edges() {
        // The tightest objective (999 → budget 1 milli) at the largest
        // possible window: the u128 intermediates keep the quotient
        // exact. All-bad traffic burns 10^6 milli against a 1-milli
        // budget.
        assert_eq!(burn_milli(u64::MAX, u64::MAX, 999), 1_000_000);
        assert_eq!(burn_milli(u64::MAX, u64::MAX, 950), 20_000);
        // Structural bound: with bad <= total the burn never exceeds
        // 10^6 / budget, far below u64::MAX.
        assert_eq!(burn_milli(u64::MAX - 1, u64::MAX, 999), 999_999);
        // Out-of-contract bad > total: well-defined, saturating instead
        // of truncating through the cast.
        assert_eq!(burn_milli(10, 5, 950), 40_000);
        assert_eq!(burn_milli(u64::MAX, 1, 950), u64::MAX);
        // Degenerate objective values clamp rather than underflow.
        assert_eq!(burn_milli(1, 1, 1_000), 1_000_000);
        assert_eq!(burn_milli(0, u64::MAX, 999), 0);
    }

    #[test]
    fn dip_to_exact_threshold_does_not_flap() {
        // objective 500 → budget 500 milli; burn = 2000 needs
        // bad/total = 1 (every sample bad at 2x over a 50% budget).
        // Use a config where the threshold is hit exactly: objective
        // 900 → budget 100; burn 2000 ⇔ bad/total = 1/5 exactly.
        // 999-cycle windows over samples spaced 200 apart: the window
        // holds exactly the last 5 completions (the inclusive floor
        // would admit a 6th at 1_000), so with bads spaced exactly 5
        // samples apart the burn is exactly 2_000 at every step once
        // the window fills.
        let cfg = SloConfig {
            threshold_cycles: 100,
            objective_milli: 900,
            fast_window_cycles: 999,
            slow_window_cycles: 999,
            burn_milli: 2_000,
            min_count: 5,
        };
        let mut t = SloTracker::new();
        let mut transitions = Vec::new();
        // Adjacent windows, each carrying exactly 1 bad in 5 samples:
        // the burn rate sits exactly at the 2000-milli policy, never
        // above or below. The >= fire condition means the alert fires
        // once and then holds — dipping *to* the threshold must not
        // resolve, so there is no Fire/Resolve flapping between
        // windows.
        for window in 0u64..6 {
            for i in 0u64..5 {
                let ts = window * 1_000 + (i + 1) * 200;
                let lat = if i == 0 { 500 } else { 50 };
                if let Some(tr) = t.observe(&cfg, ts, lat) {
                    transitions.push(tr);
                }
            }
            // At every completed window boundary the fast burn sits
            // exactly on the policy threshold.
            let (fast, _) = t.current_burn(&cfg);
            assert_eq!(fast, 2_000, "window {window} must end exactly on the threshold");
        }
        assert_eq!(transitions.len(), 1, "exactly one Fire, no Resolve flapping: {transitions:?}");
        assert!(matches!(transitions[0], Transition::Fire { burn_milli: 2_000 }));
        assert!(t.firing());
    }

    #[test]
    fn current_burn_matches_transition_burn() {
        let cfg = tight();
        let mut t = SloTracker::new();
        assert_eq!(t.current_burn(&cfg), (0, 0));
        let mut fire_burn = None;
        for i in 0..8 {
            if let Some(Transition::Fire { burn_milli }) = t.observe(&cfg, 100 * (i + 1), 500) {
                fire_burn = Some(burn_milli);
                let (fast, slow) = t.current_burn(&cfg);
                assert_eq!(fast, burn_milli, "gauge must agree with the transition snapshot");
                assert!(slow >= cfg.burn_milli);
            }
        }
        assert!(fire_burn.is_some());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Attribution events arrive in dispatch order, not completion
        /// order, so the tracker must stay coherent under any
        /// interleaving: cumulative violations are order-independent,
        /// and the transition log always alternates Fire/Resolve
        /// starting with Fire (never two fires without a resolve
        /// between them), with the final firing state matching the
        /// last transition.
        fn transitions_stay_coherent_under_any_completion_ordering(
            swaps in proptest::collection::vec((0usize..40, 0usize..40), 0..64),
        ) {
            let cfg = tight();
            let mut stream: Vec<(u64, u64)> = (0u64..40)
                .map(|i| (100 * (i + 1), if (i / 8) % 2 == 0 { 500 } else { 1 }))
                .collect();
            for &(a, b) in &swaps {
                stream.swap(a, b);
            }
            let mut t = SloTracker::new();
            let mut log = Vec::new();
            for &(ts, lat) in &stream {
                if let Some(tr) = t.observe(&cfg, ts, lat) {
                    log.push(tr);
                }
            }
            proptest::prop_assert_eq!(t.violations(), 20);
            let mut firing = false;
            for tr in &log {
                match tr {
                    Transition::Fire { .. } => {
                        proptest::prop_assert!(!firing, "Fire while already firing");
                        firing = true;
                    }
                    Transition::Resolve { .. } => {
                        proptest::prop_assert!(firing, "Resolve while not firing");
                        firing = false;
                    }
                }
            }
            proptest::prop_assert_eq!(firing, t.firing());
        }
    }

    #[test]
    fn determinism() {
        let cfg = SloConfig::default();
        let run = || {
            let mut t = SloTracker::new();
            let mut transitions = Vec::new();
            for i in 0u64..500 {
                let lat = if i % 7 == 0 { 2_000_000 } else { 10_000 };
                if let Some(tr) = t.observe(&cfg, i * 3_001, lat) {
                    transitions.push((i, tr));
                }
            }
            transitions
        };
        assert_eq!(run(), run());
    }
}
