//! The `ignite-scope-v1` report: serialization, validation, and
//! Prometheus exposition of an analyzer's aggregates.

use std::fmt::Write as _;

use ignite_cluster::json::{self, Value};
use ignite_obs::{EventSink, MetricsRegistry, QuantileSketch};

use crate::attribution::ScopeAnalyzer;
use crate::slo::SloConfig;

/// Schema tag written into (and required of) every scope report.
pub const SCOPE_SCHEMA: &str = "ignite-scope-v1";

/// Per-function rows of the report.
#[derive(Debug, Clone)]
pub struct FunctionScope {
    /// Function index in suite order.
    pub function: u32,
    /// Table-1 abbreviation (or `fn-<i>` when unknown).
    pub abbr: String,
    /// Invocations attributed.
    pub invocations: u64,
    /// Summed queueing cycles.
    pub queue_cycles: u64,
    /// Summed retry/backoff cycles (chaos runs only; 0 otherwise).
    pub retry_cycles: u64,
    /// Summed metadata DRAM cycles.
    pub dram_cycles: u64,
    /// Summed cold front-end cycles.
    pub cold_frontend_cycles: u64,
    /// Summed store-miss re-record cycles.
    pub store_miss_cycles: u64,
    /// Summed degraded-mode front-end cycles (chaos runs only).
    pub degraded_cycles: u64,
    /// Summed execution cycles.
    pub execution_cycles: u64,
    /// Summed end-to-end latency.
    pub latency_cycles: u64,
    /// Sketch quantiles.
    pub p50_latency: u64,
    /// 95th percentile.
    pub p95_latency: u64,
    /// 99th percentile.
    pub p99_latency: u64,
    /// SLO violations.
    pub violations: u64,
    /// Alert fire transitions.
    pub alert_fires: u64,
    /// Alert resolve transitions.
    pub alert_resolves: u64,
}

impl FunctionScope {
    /// This row's numeric fields as a [`ScopeTotals`] (the two carry
    /// the same measurements; only abbr/index are extra).
    fn totals(&self) -> ScopeTotals {
        ScopeTotals {
            invocations: self.invocations,
            queue_cycles: self.queue_cycles,
            retry_cycles: self.retry_cycles,
            dram_cycles: self.dram_cycles,
            cold_frontend_cycles: self.cold_frontend_cycles,
            store_miss_cycles: self.store_miss_cycles,
            degraded_cycles: self.degraded_cycles,
            execution_cycles: self.execution_cycles,
            latency_cycles: self.latency_cycles,
            p50_latency: self.p50_latency,
            p95_latency: self.p95_latency,
            p99_latency: self.p99_latency,
            violations: self.violations,
            alert_fires: self.alert_fires,
            alert_resolves: self.alert_resolves,
        }
    }
}

/// Cluster-wide totals.
#[derive(Debug, Clone, Default)]
pub struct ScopeTotals {
    /// Invocations attributed.
    pub invocations: u64,
    /// Summed queueing cycles.
    pub queue_cycles: u64,
    /// Summed retry/backoff cycles (chaos runs only; 0 otherwise).
    pub retry_cycles: u64,
    /// Summed metadata DRAM cycles.
    pub dram_cycles: u64,
    /// Summed cold front-end cycles.
    pub cold_frontend_cycles: u64,
    /// Summed store-miss re-record cycles.
    pub store_miss_cycles: u64,
    /// Summed degraded-mode front-end cycles (chaos runs only).
    pub degraded_cycles: u64,
    /// Summed execution cycles.
    pub execution_cycles: u64,
    /// Summed end-to-end latency.
    pub latency_cycles: u64,
    /// Sketch quantiles over all invocations.
    pub p50_latency: u64,
    /// 95th percentile.
    pub p95_latency: u64,
    /// 99th percentile.
    pub p99_latency: u64,
    /// SLO violations across all functions.
    pub violations: u64,
    /// Alert fire transitions across all functions.
    pub alert_fires: u64,
    /// Alert resolve transitions across all functions.
    pub alert_resolves: u64,
}

/// The full report, ready to serialize.
#[derive(Debug, Clone)]
pub struct ScopeReport {
    /// SLO in force during the run, if any.
    pub slo: Option<SloConfig>,
    /// Cluster-wide totals.
    pub totals: ScopeTotals,
    /// Per-function rows, by function index.
    pub functions: Vec<FunctionScope>,
}

impl ScopeReport {
    /// Builds the report from a finished analyzer. `abbrs` maps
    /// function index to its abbreviation (suite order, as in
    /// `ClusterOutcome::functions`); indices past the end get `fn-<i>`.
    pub fn from_analyzer<S: EventSink>(analyzer: &ScopeAnalyzer<S>, abbrs: &[String]) -> Self {
        let q = |s: &QuantileSketch| (s.quantile(50), s.quantile(95), s.quantile(99));
        let mut totals = ScopeTotals::default();
        let mut functions = Vec::new();
        for (&function, f) in analyzer.per_function() {
            let (p50, p95, p99) = q(&f.latency);
            let abbr =
                abbrs.get(function as usize).cloned().unwrap_or_else(|| format!("fn-{function}"));
            functions.push(FunctionScope {
                function,
                abbr,
                invocations: f.invocations,
                queue_cycles: f.queue_cycles,
                retry_cycles: f.retry_cycles,
                dram_cycles: f.dram_cycles,
                cold_frontend_cycles: f.cold_frontend_cycles,
                store_miss_cycles: f.store_miss_cycles,
                degraded_cycles: f.degraded_cycles,
                execution_cycles: f.execution_cycles,
                latency_cycles: f.latency_cycles,
                p50_latency: p50,
                p95_latency: p95,
                p99_latency: p99,
                violations: f.violations,
                alert_fires: f.alert_fires,
                alert_resolves: f.alert_resolves,
            });
            totals.queue_cycles += f.queue_cycles;
            totals.retry_cycles += f.retry_cycles;
            totals.dram_cycles += f.dram_cycles;
            totals.cold_frontend_cycles += f.cold_frontend_cycles;
            totals.store_miss_cycles += f.store_miss_cycles;
            totals.degraded_cycles += f.degraded_cycles;
            totals.execution_cycles += f.execution_cycles;
            totals.latency_cycles += f.latency_cycles;
            totals.violations += f.violations;
            totals.alert_fires += f.alert_fires;
            totals.alert_resolves += f.alert_resolves;
        }
        totals.invocations = analyzer.total_invocations();
        let (p50, p95, p99) = q(analyzer.overall());
        totals.p50_latency = p50;
        totals.p95_latency = p95;
        totals.p99_latency = p99;
        ScopeReport { slo: analyzer.slo().copied(), totals, functions }
    }

    /// Serializes to deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        fn push_components(s: &mut String, indent: &str, c: &ScopeTotals) {
            let _ = writeln!(s, "{indent}\"invocations\": {},", c.invocations);
            let _ = writeln!(s, "{indent}\"queue_cycles\": {},", c.queue_cycles);
            let _ = writeln!(s, "{indent}\"retry_cycles\": {},", c.retry_cycles);
            let _ = writeln!(s, "{indent}\"dram_cycles\": {},", c.dram_cycles);
            let _ = writeln!(s, "{indent}\"cold_frontend_cycles\": {},", c.cold_frontend_cycles);
            let _ = writeln!(s, "{indent}\"store_miss_cycles\": {},", c.store_miss_cycles);
            let _ = writeln!(s, "{indent}\"degraded_cycles\": {},", c.degraded_cycles);
            let _ = writeln!(s, "{indent}\"execution_cycles\": {},", c.execution_cycles);
            let _ = writeln!(s, "{indent}\"latency_cycles\": {},", c.latency_cycles);
            let _ = writeln!(s, "{indent}\"p50_latency_cycles\": {},", c.p50_latency);
            let _ = writeln!(s, "{indent}\"p95_latency_cycles\": {},", c.p95_latency);
            let _ = writeln!(s, "{indent}\"p99_latency_cycles\": {},", c.p99_latency);
            let _ = writeln!(s, "{indent}\"slo_violations\": {},", c.violations);
            let _ = writeln!(s, "{indent}\"alert_fires\": {},", c.alert_fires);
            let _ = writeln!(s, "{indent}\"alert_resolves\": {}", c.alert_resolves);
        }
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCOPE_SCHEMA}\",");
        match &self.slo {
            None => s.push_str("  \"slo\": null,\n"),
            Some(slo) => {
                s.push_str("  \"slo\": {\n");
                let _ = writeln!(s, "    \"threshold_cycles\": {},", slo.threshold_cycles);
                let _ = writeln!(s, "    \"objective_milli\": {},", slo.objective_milli);
                let _ = writeln!(s, "    \"fast_window_cycles\": {},", slo.fast_window_cycles);
                let _ = writeln!(s, "    \"slow_window_cycles\": {},", slo.slow_window_cycles);
                let _ = writeln!(s, "    \"burn_milli\": {},", slo.burn_milli);
                let _ = writeln!(s, "    \"min_count\": {}", slo.min_count);
                s.push_str("  },\n");
            }
        }
        s.push_str("  \"totals\": {\n");
        push_components(&mut s, "    ", &self.totals);
        s.push_str("  },\n");
        s.push_str("  \"functions\": [\n");
        for (i, f) in self.functions.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"function\": {},", json::escape(&f.abbr));
            let _ = writeln!(s, "      \"index\": {},", f.function);
            push_components(&mut s, "      ", &f.totals());
            s.push_str(if i + 1 == self.functions.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Validates serialized report text: parseable JSON, the right
    /// schema tag, every required key, and the attribution invariant —
    /// the seven components sum exactly to the latency, in the totals
    /// and in every function row — plus quantile ordering. The chaos
    /// components (`retry_cycles`, `degraded_cycles`) are read as 0
    /// when absent, so reports written before the failure model
    /// existed still validate.
    pub fn validate(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let obj = doc.as_object().ok_or("report is not an object")?;
        let schema = json::get(obj, "schema").and_then(Value::as_str);
        if schema != Some(SCOPE_SCHEMA) {
            return Err(format!("schema {schema:?}, want {SCOPE_SCHEMA:?}"));
        }
        match json::get(obj, "slo") {
            None => return Err("missing 'slo'".to_string()),
            Some(Value::Null) => {}
            Some(v) => {
                let so = v.as_object().ok_or("'slo' is not an object or null")?;
                for k in [
                    "threshold_cycles",
                    "objective_milli",
                    "fast_window_cycles",
                    "slow_window_cycles",
                    "burn_milli",
                    "min_count",
                ] {
                    json::get(so, k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("slo: missing number '{k}'"))?;
                }
            }
        }
        let check_section = |o: &[(String, Value)], ctx: &str| -> Result<(), String> {
            let get = |k: &str| {
                json::get(o, k)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{ctx}: missing number '{k}'"))
            };
            let opt = |k: &str| json::get(o, k).and_then(Value::as_f64).unwrap_or(0.0);
            let queue = get("queue_cycles")?;
            let retry = opt("retry_cycles");
            let dram = get("dram_cycles")?;
            let cold = get("cold_frontend_cycles")?;
            let miss = get("store_miss_cycles")?;
            let degraded = opt("degraded_cycles");
            let exec = get("execution_cycles")?;
            let lat = get("latency_cycles")?;
            // Integer cycle counts survive the f64 round trip exactly
            // below 2^53, so equality here is exact.
            let sum = queue + retry + dram + cold + miss + degraded + exec;
            if sum != lat {
                return Err(format!("{ctx}: components sum to {sum}, latency is {lat}"));
            }
            let p50 = get("p50_latency_cycles")?;
            let p95 = get("p95_latency_cycles")?;
            let p99 = get("p99_latency_cycles")?;
            if !(p50 <= p95 && p95 <= p99) {
                return Err(format!("{ctx}: quantiles not ordered: {p50} {p95} {p99}"));
            }
            for k in ["invocations", "slo_violations", "alert_fires", "alert_resolves"] {
                get(k)?;
            }
            Ok(())
        };
        let totals =
            json::get(obj, "totals").and_then(Value::as_object).ok_or("missing object 'totals'")?;
        check_section(totals, "totals")?;
        let functions = json::get(obj, "functions")
            .and_then(Value::as_array)
            .ok_or("missing array 'functions'")?;
        let mut inv_sum = 0.0;
        for (i, f) in functions.iter().enumerate() {
            let fo = f.as_object().ok_or_else(|| format!("functions[{i}] is not an object"))?;
            json::get(fo, "function")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("functions[{i}]: missing string 'function'"))?;
            check_section(fo, &format!("functions[{i}]"))?;
            inv_sum += json::get(fo, "invocations").and_then(Value::as_f64).unwrap_or(0.0);
        }
        let total_inv = json::get(totals, "invocations").and_then(Value::as_f64).unwrap_or(-1.0);
        if inv_sum != total_inv {
            return Err(format!("function invocations sum to {inv_sum}, totals say {total_inv}"));
        }
        Ok(())
    }
}

/// Records the report into a metrics registry as
/// `ignite_scope_*` families: per-component cycle counters labeled by
/// component and function, invocation/violation/alert counters, and
/// quantile gauges.
pub fn record_scope_metrics(reg: &mut MetricsRegistry, report: &ScopeReport) {
    for f in &report.functions {
        let fl = [("function", f.abbr.as_str())];
        // The chaos components only appear in the exposition when they
        // are nonzero, keeping chaos-free expositions byte-identical to
        // what they were before the failure model existed.
        for (component, cycles, always) in [
            ("queue", f.queue_cycles, true),
            ("retry", f.retry_cycles, false),
            ("dram", f.dram_cycles, true),
            ("cold_frontend", f.cold_frontend_cycles, true),
            ("store_miss", f.store_miss_cycles, true),
            ("degraded", f.degraded_cycles, false),
            ("execution", f.execution_cycles, true),
        ] {
            if !always && cycles == 0 {
                continue;
            }
            reg.inc_counter(
                "ignite_scope_component_cycles_total",
                "Attributed latency cycles by causal component",
                &[("component", component), ("function", f.abbr.as_str())],
                cycles,
            );
        }
        reg.inc_counter(
            "ignite_scope_invocations_total",
            "Invocations attributed by scope",
            &fl,
            f.invocations,
        );
        reg.inc_counter(
            "ignite_scope_slo_violations_total",
            "Invocations over the SLO latency threshold",
            &fl,
            f.violations,
        );
        reg.inc_counter(
            "ignite_scope_alert_fires_total",
            "Burn-rate alert fire transitions",
            &fl,
            f.alert_fires,
        );
        reg.set_gauge(
            "ignite_scope_p99_latency_cycles",
            "Sketch 99th-percentile latency",
            &fl,
            f.p99_latency as f64,
        );
    }
    reg.set_gauge(
        "ignite_scope_p99_latency_cycles",
        "Sketch 99th-percentile latency",
        &[("function", "all")],
        report.totals.p99_latency as f64,
    );
}

/// Records the SLO alerting surface into the registry as `ignite_slo_*`
/// families: alert Fire/Resolve transition counters and the live
/// fast/slow burn-rate gauges per function (the same
/// [`crate::slo::SloTracker::current_burn`] values the policy
/// controller reads). Emits nothing when the analyzer has no SLO
/// configured, so SLO-free expositions stay byte-identical to
/// pre-alerting output.
pub fn record_slo_metrics<S: EventSink>(
    reg: &mut MetricsRegistry,
    analyzer: &ScopeAnalyzer<S>,
    abbrs: &[String],
) {
    let Some(cfg) = analyzer.slo().copied() else { return };
    for (&function, f) in analyzer.per_function() {
        let abbr =
            abbrs.get(function as usize).cloned().unwrap_or_else(|| format!("fn-{function}"));
        let fl = [("function", abbr.as_str())];
        reg.inc_counter(
            "ignite_slo_alerts_fired_total",
            "Burn-rate alert Fire transitions",
            &fl,
            f.alert_fires,
        );
        reg.inc_counter(
            "ignite_slo_alerts_resolved_total",
            "Burn-rate alert Resolve transitions",
            &fl,
            f.alert_resolves,
        );
        let (fast, slow) =
            analyzer.trackers().get(&function).map(|t| t.current_burn(&cfg)).unwrap_or((0, 0));
        for (window, burn) in [("fast", fast), ("slow", slow)] {
            reg.set_gauge(
                "ignite_slo_burn_rate_milli",
                "Burn rate at end of run, in milli-units (1000 = sustainable)",
                &[("function", abbr.as_str()), ("window", window)],
                burn as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::ScopeAnalyzer;
    use ignite_obs::{Event, EventKind, NullSink, Track};

    fn analyzer_with_traffic() -> ScopeAnalyzer<NullSink> {
        let mut an = ScopeAnalyzer::new(NullSink).with_slo(SloConfig::default());
        for i in 0u64..50 {
            let function = (i % 3) as u32;
            let queue = 13 * i;
            let exec = 40_000 + 1_000 * i;
            an.record(Event {
                ts: 1_000 * (i + 1),
                dur: 0,
                track: Track::Cluster,
                kind: EventKind::Attribution {
                    function,
                    queue_cycles: queue,
                    retry_cycles: if i % 5 == 0 { 700 } else { 0 },
                    dram_cycles: 128 * i,
                    cold_frontend_cycles: if i % 2 == 0 { 9_000 } else { 0 },
                    store_miss_cycles: if i % 2 == 1 { 9_000 } else { 0 },
                    degraded_cycles: if i % 7 == 0 { 300 } else { 0 },
                    execution_cycles: exec,
                    latency_cycles: queue
                        + if i % 5 == 0 { 700 } else { 0 }
                        + 128 * i
                        + 9_000
                        + if i % 7 == 0 { 300 } else { 0 }
                        + exec,
                },
            });
        }
        an
    }

    #[test]
    fn report_round_trips_through_validate() {
        let an = analyzer_with_traffic();
        let report = ScopeReport::from_analyzer(&an, &["aes".into(), "img".into()]);
        let text = report.to_json();
        ScopeReport::validate(&text).expect("valid report");
        // fn-2 had no abbr supplied.
        assert!(text.contains("\"fn-2\""));
        // Deterministic serialization.
        assert_eq!(text, report.to_json());
    }

    #[test]
    fn validate_rejects_broken_invariant() {
        let an = analyzer_with_traffic();
        let report = ScopeReport::from_analyzer(&an, &[]);
        let good = report.to_json();
        let bad = good.replacen("\"queue_cycles\": ", "\"queue_cycles\": 1", 1);
        assert!(ScopeReport::validate(&bad).is_err());
        assert!(ScopeReport::validate("{}").is_err());
        assert!(ScopeReport::validate("not json").is_err());
    }

    #[test]
    fn slo_families_appear_only_with_an_slo_and_are_byte_deterministic() {
        // No SLO configured: the families must be entirely absent.
        let mut plain = ScopeAnalyzer::new(NullSink);
        plain.record(Event {
            ts: 1_000,
            dur: 0,
            track: Track::Cluster,
            kind: EventKind::Attribution {
                function: 0,
                queue_cycles: 0,
                retry_cycles: 0,
                dram_cycles: 0,
                cold_frontend_cycles: 0,
                store_miss_cycles: 0,
                degraded_cycles: 0,
                execution_cycles: 10,
                latency_cycles: 10,
            },
        });
        let mut reg = MetricsRegistry::new();
        record_slo_metrics(&mut reg, &plain, &[]);
        assert_eq!(reg.expose(), "", "SLO-free exposition must carry no ignite_slo_ family");

        // With a violating stream the transition counters and live burn
        // gauges appear, byte-identically across expositions.
        let an = || {
            let cfg = SloConfig {
                threshold_cycles: 100,
                objective_milli: 500,
                fast_window_cycles: 1_000,
                slow_window_cycles: 4_000,
                burn_milli: 2_000,
                min_count: 4,
            };
            let mut an = ScopeAnalyzer::new(NullSink).with_slo(cfg);
            for i in 0u64..12 {
                let lat = if i < 8 { 500 } else { 1 };
                an.record(Event {
                    ts: 100 * (i + 1),
                    dur: 0,
                    track: Track::Cluster,
                    kind: EventKind::Attribution {
                        function: 0,
                        queue_cycles: 0,
                        retry_cycles: 0,
                        dram_cycles: 0,
                        cold_frontend_cycles: 0,
                        store_miss_cycles: 0,
                        degraded_cycles: 0,
                        execution_cycles: lat,
                        latency_cycles: lat,
                    },
                });
            }
            an
        };
        let expose = |an: &ScopeAnalyzer<NullSink>| {
            let mut reg = MetricsRegistry::new();
            record_slo_metrics(&mut reg, an, &["aes".into()]);
            reg.expose()
        };
        let a = expose(&an());
        assert_eq!(a, expose(&an()), "exposition must be byte-deterministic");
        for needle in [
            "ignite_slo_alerts_fired_total{function=\"aes\"} 1",
            "ignite_slo_alerts_resolved_total{function=\"aes\"}",
            "ignite_slo_burn_rate_milli{function=\"aes\",window=\"fast\"}",
            "ignite_slo_burn_rate_milli{function=\"aes\",window=\"slow\"}",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn metrics_exposition_contains_every_component() {
        let an = analyzer_with_traffic();
        let report = ScopeReport::from_analyzer(&an, &[]);
        let mut reg = MetricsRegistry::new();
        record_scope_metrics(&mut reg, &report);
        let text = reg.expose();
        for needle in [
            "ignite_scope_component_cycles_total",
            "component=\"queue\"",
            "component=\"retry\"",
            "component=\"dram\"",
            "component=\"cold_frontend\"",
            "component=\"store_miss\"",
            "component=\"degraded\"",
            "component=\"execution\"",
            "ignite_scope_invocations_total",
            "ignite_scope_slo_violations_total",
            "ignite_scope_p99_latency_cycles",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
