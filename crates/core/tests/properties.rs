//! Property-based tests for Ignite's metadata codec and record/replay.
//!
//! The codec is the heart of the contribution: any encode/decode mismatch
//! silently corrupts restored front-end state, so the roundtrip property is
//! tested over arbitrary branch streams and delta-width configurations.

use proptest::prelude::*;

use ignite_core::codec::{CodecConfig, Encoder, Metadata};
use ignite_core::record::Recorder;
use ignite_core::replay::{ReplayConfig, Replayer};
use ignite_core::{Ignite, IgniteConfig};
use ignite_uarch::addr::Addr;
use ignite_uarch::btb::{BranchKind, Btb, BtbEntry};
use ignite_uarch::cbp::Cbp;
use ignite_uarch::config::UarchConfig;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::tlb::Itlb;

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

/// Arbitrary entries, from tightly clustered (delta-friendly) to scattered
/// across the full 48-bit space (forcing full-format fallbacks).
fn arb_entries() -> impl Strategy<Value = Vec<BtbEntry>> {
    prop::collection::vec(
        (0u64..(1 << 47), 0u64..(1 << 47), arb_kind())
            .prop_map(|(pc, t, k)| BtbEntry::new(Addr::new(pc), Addr::new(t), k)),
        0..64,
    )
}

/// Entries shaped like a real control-flow chain: each branch sits shortly
/// after the previous branch's target (the structure Ignite's recorder
/// sees, and what the delta format is designed around).
fn arb_chain() -> impl Strategy<Value = Vec<BtbEntry>> {
    (0u64..(1 << 40), prop::collection::vec((1u64..64, 4u64..2048, arb_kind()), 1..128)).prop_map(
        |(base, steps)| {
            let mut cursor = base;
            steps
                .into_iter()
                .map(|(gap, span, kind)| {
                    let pc = cursor.wrapping_add(gap) & ((1 << 47) - 1);
                    let target = pc.wrapping_add(span) & ((1 << 47) - 1);
                    cursor = target;
                    BtbEntry::new(Addr::new(pc), Addr::new(target), kind)
                })
                .collect()
        },
    )
}

fn arb_widths() -> impl Strategy<Value = CodecConfig> {
    (4u32..32, 4u32..32).prop_map(|(s, t)| CodecConfig { src_delta_bits: s, tgt_delta_bits: t })
}

proptest! {
    #[test]
    fn codec_roundtrip_arbitrary_entries(entries in arb_entries(), cfg in arb_widths()) {
        let mut enc = Encoder::new(cfg);
        for e in &entries {
            enc.push(e);
        }
        let md = enc.finish();
        let decoded: Vec<BtbEntry> = md.decode().collect();
        prop_assert_eq!(decoded, entries);
    }

    #[test]
    fn codec_roundtrip_chains(entries in arb_chain(), cfg in arb_widths()) {
        let mut enc = Encoder::new(cfg);
        for e in &entries {
            enc.push(e);
        }
        let md = enc.finish();
        let decoded: Vec<BtbEntry> = md.decode().collect();
        prop_assert_eq!(decoded, entries);
    }

    #[test]
    fn compressed_size_never_exceeds_full_format(entries in arb_chain()) {
        let cfg = CodecConfig::default();
        let mut enc = Encoder::new(cfg);
        for e in &entries {
            enc.push(e);
        }
        let bits = enc.byte_len() * 8;
        let full_bits = entries.len() * cfg.full_bits() as usize;
        prop_assert!(bits <= full_bits + 8, "{bits} bits vs full {full_bits}");
    }

    #[test]
    fn chains_compress_well(entries in arb_chain()) {
        prop_assume!(entries.len() >= 16);
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        let bits_per_entry = enc.byte_len() * 8 / entries.len();
        // Local chains should compress far below the 100-bit full format.
        prop_assert!(bits_per_entry < 64, "{bits_per_entry} bits/entry");
    }

    #[test]
    fn recorder_budget_is_respected(entries in arb_chain(), budget in 8usize..512) {
        let mut rec = Recorder::new(CodecConfig::default(), budget);
        for e in &entries {
            rec.observe(e);
        }
        // The budget may be exceeded by at most one record (the one that
        // crossed the boundary).
        let md = rec.finish();
        prop_assert!(md.byte_len() <= budget + 13, "{} vs budget {budget}", md.byte_len());
    }

    #[test]
    fn replay_restores_exactly_the_recorded_branches(entries in arb_chain()) {
        // Deduplicate by PC the way a BTB would (later records update).
        let cfg = UarchConfig::ice_lake_like();
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        let md = enc.finish();
        let mut btb = Btb::new(&cfg.btb);
        let mut cbp = Cbp::new(&cfg.cbp);
        let mut itlb = Itlb::new(&cfg.itlb);
        let mut h = Hierarchy::new(&cfg.hierarchy);
        let mut replay = Replayer::new(&md, ReplayConfig {
            throttle_threshold: u64::MAX, // no throttling for this property
            ..ReplayConfig::default()
        });
        let mut now = 0;
        while !replay.is_done() {
            replay.step(now, &mut btb, &mut cbp, &mut itlb, &mut h);
            now += 1;
        }
        for e in &entries {
            let restored = btb.probe(e.branch_pc);
            prop_assert!(restored.is_some(), "missing {:?}", e.branch_pc);
        }
    }

    #[test]
    fn full_ignite_cycle_preserves_unique_pcs(entries in arb_chain()) {
        let cfg = UarchConfig::ice_lake_like();
        let mut btb = Btb::new(&cfg.btb);
        let mut cbp = Cbp::new(&cfg.cbp);
        let mut itlb = Itlb::new(&cfg.itlb);
        let mut h = Hierarchy::new(&cfg.hierarchy);
        let mut ignite = Ignite::new(IgniteConfig::default());

        ignite.begin_invocation(1);
        for e in &entries {
            btb.insert(*e, false);
        }
        ignite.observe_btb_insertions(&mut btb);
        let s = ignite.end_invocation(1);
        let unique: std::collections::HashSet<_> =
            entries.iter().map(|e| e.branch_pc).collect();
        // One record per *allocation*: duplicates update in place.
        prop_assert_eq!(s.entries_recorded as usize, unique.len());

        btb.flush();
        ignite.begin_invocation(1);
        let mut now = 0;
        while ignite.replay_pending() {
            ignite.step(now, &mut btb, &mut cbp, &mut itlb, &mut h);
            now += 1;
            // Consume restored entries so throttling cannot stall forever.
            for e in &entries {
                btb.lookup(e.branch_pc);
            }
        }
        for pc in &unique {
            prop_assert!(btb.probe(*pc).is_some());
        }
    }

    /// The fallible decoder agrees with the infallible one on every
    /// well-formed stream: `decode_checked(encode(x)) == x`, with no error
    /// in any position.
    #[test]
    fn decode_checked_roundtrip_arbitrary_entries(
        entries in arb_entries(),
        cfg in arb_widths(),
    ) {
        let mut enc = Encoder::new(cfg);
        for e in &entries {
            enc.push(e);
        }
        let md = enc.finish();
        let decoded: Result<Vec<BtbEntry>, _> = md.decode_checked().collect();
        match decoded {
            Ok(decoded) => prop_assert_eq!(decoded, entries),
            Err(e) => prop_assert!(false, "well-formed stream failed to decode: {e}"),
        }
    }

    /// Same roundtrip property over recorder-shaped chains, where the
    /// delta fast path (rather than the full-format fallback) dominates.
    #[test]
    fn decode_checked_roundtrip_chains(entries in arb_chain(), cfg in arb_widths()) {
        let mut enc = Encoder::new(cfg);
        for e in &entries {
            enc.push(e);
        }
        let md = enc.finish();
        let decoded: Result<Vec<BtbEntry>, _> = md.decode_checked().collect();
        match decoded {
            Ok(decoded) => prop_assert_eq!(decoded, entries),
            Err(e) => prop_assert!(false, "well-formed stream failed to decode: {e}"),
        }
    }

    /// Every mutated image either round-trips to exactly the original
    /// entries (possible: an even number of flips on the same bit is a
    /// no-op) or yields a typed `CodecError` somewhere in the pipeline
    /// (structural parse, checksum validation, or mid-stream decode) —
    /// never a panic, never silently different entries.
    #[test]
    fn mutated_image_roundtrips_or_yields_codec_error(
        entries in arb_chain(),
        flips in prop::collection::vec((any::<usize>(), 0u32..8), 1..16),
    ) {
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        let mut bytes = enc.finish().to_bytes();
        for (pos, bit) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        // Err at any stage is the detected-corruption arm; full success
        // must mean the mutation was a no-op and the stream round-trips.
        if let Ok(md) = Metadata::from_bytes(&bytes) {
            if md.validate().is_ok() {
                let decoded: Result<Vec<BtbEntry>, _> = md.decode_checked().collect();
                if let Ok(decoded) = decoded {
                    prop_assert_eq!(
                        decoded,
                        entries,
                        "undetected corruption changed the decoded entries"
                    );
                }
            }
        }
    }

    /// Hardened decode, property 1: completely arbitrary byte soup never
    /// panics, and whatever parses never yields more entries than its
    /// header claims. Half the cases are stamped with a plausible header
    /// (magic, version, default widths) so the fuzz reaches the payload
    /// decoder rather than dying at the magic check.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        mut bytes in prop::collection::vec(any::<u8>(), 0..512),
        stamp_header in any::<bool>(),
    ) {
        if stamp_header && bytes.len() >= 8 {
            bytes[..4].copy_from_slice(b"IGNT");
            bytes[4] = 1; // version
            bytes[5] = 9; // src_delta_bits
            bytes[6] = 21; // tgt_delta_bits
        }
        if let Ok(md) = Metadata::from_bytes(&bytes) {
            let claimed = md.entries();
            prop_assert!(md.decode().count() <= claimed);
            let _ = md.validate();
            let mut yielded = 0usize;
            for r in md.decode_checked() {
                match r {
                    Ok(_) => yielded += 1,
                    Err(_) => break,
                }
            }
            prop_assert!(yielded <= claimed);
        }
    }

    /// Hardened decode, property 2: a valid image with a handful of bits
    /// flipped either fails structural parsing, fails validation, or
    /// decodes to at most the claimed entry count — never a panic, never
    /// invented entries.
    #[test]
    fn mutated_image_never_yields_excess_entries(
        entries in arb_chain(),
        flips in prop::collection::vec((any::<usize>(), 0u32..8), 1..16),
    ) {
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        let mut bytes = enc.finish().to_bytes();
        for (pos, bit) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        if let Ok(md) = Metadata::from_bytes(&bytes) {
            let claimed = md.entries();
            prop_assert!(md.decode().count() <= claimed);
            let _ = md.validate();
        }
    }
}
