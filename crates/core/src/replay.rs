//! Ignite replay logic (§4.2).
//!
//! Replay streams the recorded metadata sequentially and, per record:
//!
//! 1. expands the deltas to full addresses;
//! 2. inserts a BTB entry (marked *restored*);
//! 3. for conditional branches, initializes the bimodal entry (weakly taken
//!    by default — the policy §6.4 validates);
//! 4. translates the branch PC through the ITLB (warming it);
//! 5. prefetches the instruction block(s) into the L2 — chaining from the
//!    previous record's target through this record's branch PC, which
//!    reconstructs the instruction working set (§4 "it is trivial to
//!    reconstruct the working set of instruction cache blocks").
//!
//! Replay is throttled whenever the number of restored-but-unaccessed BTB
//! entries exceeds a threshold (1 K, §5.3), extending the BTB's effective
//! reach for functions whose branch working set exceeds its capacity.

use ignite_uarch::addr::{lines_spanned, Addr};
use ignite_uarch::bimodal::{BimInitPolicy, Counter};
use ignite_uarch::btb::{Btb, BtbEntry};
use ignite_uarch::cache::FillKind;
use ignite_uarch::cbp::Cbp;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::tlb::Itlb;
use ignite_uarch::Cycle;

use crate::codec::Metadata;

/// Replay pacing and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Records restored per cycle.
    pub entries_per_cycle: u32,
    /// Pause replay while more than this many restored BTB entries are
    /// still untouched (§5.3: 1 K).
    pub throttle_threshold: u64,
    /// Bimodal initialization policy for restored conditionals.
    pub bim_policy: BimInitPolicy,
    /// Longest chained code run prefetched per record, in bytes (guards
    /// against metadata corruption producing runaway prefetch).
    pub max_chain_bytes: u64,
    /// Whether to issue L2 instruction prefetches (disabled in the
    /// BTB/BIM-only ablations).
    pub prefetch_instructions: bool,
    /// Verify the region checksum before trusting it; a failing region is
    /// dropped wholesale (counted in [`ReplayStats::decode_errors`]).
    pub validate_metadata: bool,
    /// Watchdog: abandon replay after this many consecutive cycles with no
    /// restoration or prefetch progress (generalizes the §5.3 throttle — a
    /// replay that can never catch fetch up must not stall the invocation
    /// forever). `0` disables the watchdog.
    pub watchdog_stall_steps: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            entries_per_cycle: 2,
            throttle_threshold: 1_000,
            bim_policy: BimInitPolicy::WeaklyTaken,
            max_chain_bytes: 4_096,
            prefetch_instructions: true,
            validate_metadata: true,
            watchdog_stall_steps: 20_000,
        }
    }
}

/// Traffic and progress from one replay step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStep {
    /// Metadata bytes streamed from memory.
    pub metadata_bytes: u64,
    /// Instruction bytes pulled from DRAM into the L2.
    pub instruction_bytes: u64,
    /// Records restored this step.
    pub entries_restored: u64,
    /// Whether the step was throttled.
    pub throttled: bool,
}

/// Cumulative replay statistics for one invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records restored into the BTB.
    pub entries_restored: u64,
    /// Conditional records whose BIM entry was initialized.
    pub bim_initialized: u64,
    /// L2 prefetches issued.
    pub l2_prefetches: u64,
    /// ITLB translations warmed.
    pub itlb_warmed: u64,
    /// Metadata bytes streamed from memory.
    pub metadata_bytes: u64,
    /// Cycles on which replay was throttled.
    pub throttled_steps: u64,
    /// Corruption events encountered while reading metadata (a failed
    /// checksum, an unreadable region, or a mid-stream decode error each
    /// count once).
    pub decode_errors: u64,
    /// Records that were recorded but never restored because corruption or
    /// the watchdog dropped them.
    pub entries_dropped: u64,
    /// Restored BTB entries whose target turned out to be wrong at commit
    /// (stale metadata corrected by the normal resteer path).
    pub stale_restored: u64,
    /// Times the watchdog abandoned a stalled replay.
    pub watchdog_abandons: u64,
}

impl ReplayStats {
    /// Accumulates `other` into `self`, field by field.
    pub fn merge(&mut self, other: &ReplayStats) {
        self.entries_restored += other.entries_restored;
        self.bim_initialized += other.bim_initialized;
        self.l2_prefetches += other.l2_prefetches;
        self.itlb_warmed += other.itlb_warmed;
        self.metadata_bytes += other.metadata_bytes;
        self.throttled_steps += other.throttled_steps;
        self.decode_errors += other.decode_errors;
        self.entries_dropped += other.entries_dropped;
        self.stale_restored += other.stale_restored;
        self.watchdog_abandons += other.watchdog_abandons;
    }
}

/// A replay session for one invocation.
///
/// # Example
///
/// ```
/// use ignite_core::codec::{CodecConfig, Encoder};
/// use ignite_core::replay::{Replayer, ReplayConfig};
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::{BranchKind, Btb, BtbEntry};
/// use ignite_uarch::cbp::Cbp;
/// use ignite_uarch::config::UarchConfig;
/// use ignite_uarch::hierarchy::Hierarchy;
/// use ignite_uarch::tlb::Itlb;
///
/// let cfg = UarchConfig::tiny_for_tests();
/// let (mut btb, mut cbp) = (Btb::new(&cfg.btb), Cbp::new(&cfg.cbp));
/// let (mut h, mut tlb) = (Hierarchy::new(&cfg.hierarchy), Itlb::new(&cfg.itlb));
///
/// let mut enc = Encoder::new(CodecConfig::default());
/// enc.push(&BtbEntry::new(Addr::new(0x100), Addr::new(0x200), BranchKind::Call));
/// let metadata = enc.finish();
///
/// let mut replay = Replayer::new(&metadata, ReplayConfig::default());
/// while !replay.is_done() {
///     replay.step(0, &mut btb, &mut cbp, &mut tlb, &mut h);
/// }
/// assert!(btb.probe(Addr::new(0x100)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Replayer {
    cfg: ReplayConfig,
    entries: Vec<BtbEntry>,
    cursor: usize,
    /// Previous record's target — the start of the code run ending at the
    /// current record's branch PC.
    prev_target: Option<Addr>,
    /// Lines awaiting an L2 prefetch slot (BTB/BIM restoration runs at the
    /// replay rate; instruction streaming is DRAM-bandwidth limited).
    pending_lines: std::collections::VecDeque<Addr>,
    /// Metadata bytes per record (amortized), for streaming accounting.
    bytes_per_entry: f64,
    /// Consecutive steps with neither restoration nor prefetch progress.
    stall_steps: u64,
    stats: ReplayStats,
}

impl Replayer {
    /// Creates a replay session over recorded metadata.
    ///
    /// The region is read defensively: if checksum validation is enabled
    /// and fails, every record is dropped; otherwise records are decoded
    /// until the first corruption and the remainder of the region is
    /// dropped. Either way the session itself always constructs — corrupted
    /// metadata degrades to fewer restorations, never to a panic.
    pub fn new(metadata: &Metadata, cfg: ReplayConfig) -> Self {
        let mut stats = ReplayStats::default();
        let claimed = metadata.entries();
        let mut entries: Vec<BtbEntry> = Vec::new();
        let validation = if cfg.validate_metadata { metadata.validate() } else { Ok(()) };
        match validation {
            Err(_) => {
                stats.decode_errors = 1;
                stats.entries_dropped = claimed as u64;
            }
            Ok(()) => {
                for record in metadata.decode_checked() {
                    match record {
                        Ok(e) => entries.push(e),
                        Err(_) => {
                            stats.decode_errors = 1;
                            stats.entries_dropped = claimed.saturating_sub(entries.len()) as u64;
                            break;
                        }
                    }
                }
            }
        }
        let bytes_per_entry = if entries.is_empty() {
            0.0
        } else {
            metadata.byte_len() as f64 / entries.len() as f64
        };
        Replayer {
            cfg,
            entries,
            cursor: 0,
            prev_target: None,
            pending_lines: std::collections::VecDeque::new(),
            bytes_per_entry,
            stall_steps: 0,
            stats,
        }
    }

    /// Creates a session for a region that could not be read at all
    /// (structural corruption or loss detected before decode): it is
    /// immediately done and carries the drop accounting.
    pub fn unreadable(claimed_entries: usize, cfg: ReplayConfig) -> Self {
        let mut r = Replayer::new(&crate::codec::Encoder::new(Default::default()).finish(), cfg);
        r.stats.decode_errors = 1;
        r.stats.entries_dropped = claimed_entries as u64;
        r
    }

    /// Whether every record has been replayed and every queued instruction
    /// prefetch issued.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.entries.len() && self.pending_lines.is_empty()
    }

    /// Total records in the stream.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Records neither restored nor dropped yet: still pending when the
    /// invocation ends, these are the genuinely *unfinished* entries.
    /// Watchdog-abandoned records advance the cursor and count as
    /// dropped, so pending and dropped never overlap.
    pub fn pending_entries(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ReplayStats {
        &self.stats
    }

    /// Runs one cycle of replay.
    pub fn step(
        &mut self,
        now: Cycle,
        btb: &mut Btb,
        cbp: &mut Cbp,
        itlb: &mut Itlb,
        hierarchy: &mut Hierarchy,
    ) -> ReplayStep {
        let mut out = ReplayStep::default();
        if self.is_done() {
            return out;
        }
        let step_result = self.step_inner(now, btb, cbp, itlb, hierarchy, &mut out);
        // Watchdog (generalized §5.3 throttle): if replay makes no progress
        // for long enough — permanently throttled, or starved of prefetch
        // slots — abandon it rather than stall the invocation. The dropped
        // records degrade to ordinary demand misses.
        if step_result {
            self.stall_steps = 0;
        } else {
            self.stall_steps += 1;
            if self.cfg.watchdog_stall_steps > 0
                && self.stall_steps >= self.cfg.watchdog_stall_steps
            {
                let dropped = (self.entries.len().saturating_sub(self.cursor)) as u64;
                self.stats.entries_dropped += dropped;
                self.stats.watchdog_abandons += 1;
                self.cursor = self.entries.len();
                self.pending_lines.clear();
            }
        }
        out
    }

    /// The pre-watchdog body of [`Replayer::step`]; returns whether any
    /// progress was made this cycle.
    fn step_inner(
        &mut self,
        now: Cycle,
        btb: &mut Btb,
        cbp: &mut Cbp,
        itlb: &mut Itlb,
        hierarchy: &mut Hierarchy,
        out: &mut ReplayStep,
    ) -> bool {
        let mut progress = false;
        // Drain queued instruction prefetches first, as DRAM bandwidth
        // (modelled by the L2 prefetch MSHRs) allows.
        while let Some(&line) = self.pending_lines.front() {
            if hierarchy.probe_l2(line) {
                self.pending_lines.pop_front();
                progress = true;
                continue;
            }
            if hierarchy.l2_prefetch_capacity(now) == 0 {
                break;
            }
            self.pending_lines.pop_front();
            progress = true;
            if let Some(r) = hierarchy.prefetch_l2(line, now, FillKind::Restore) {
                out.instruction_bytes += r.bytes_from_memory;
                self.stats.l2_prefetches += 1;
            }
        }
        // Throttle: too many restored entries not yet consumed (§4.2).
        if btb.restored_untouched() > self.cfg.throttle_threshold {
            self.stats.throttled_steps += 1;
            out.throttled = true;
            return progress;
        }
        for _ in 0..self.cfg.entries_per_cycle {
            let Some(&entry) = self.entries.get(self.cursor) else {
                break;
            };
            self.cursor += 1;
            // 1-2. Restore the BTB entry.
            btb.insert(entry, true);
            self.stats.entries_restored += 1;
            out.entries_restored += 1;
            // 3. Initialize the BIM for conditionals.
            if entry.kind.is_conditional() {
                match self.cfg.bim_policy {
                    BimInitPolicy::None => {}
                    BimInitPolicy::WeaklyTaken => {
                        cbp.ignite_initialize(entry.branch_pc, Counter::WeakTaken);
                        self.stats.bim_initialized += 1;
                    }
                    BimInitPolicy::WeaklyNotTaken => {
                        cbp.ignite_initialize(entry.branch_pc, Counter::WeakNotTaken);
                        self.stats.bim_initialized += 1;
                    }
                }
            }
            // 4. Translate (warms the ITLB).
            if !itlb.probe(entry.branch_pc) {
                itlb.warm(entry.branch_pc);
                self.stats.itlb_warmed += 1;
            }
            // 5. Queue the code run ending at this branch for L2 prefetch.
            if self.cfg.prefetch_instructions {
                let run_start = match self.prev_target {
                    Some(t)
                        if t <= entry.branch_pc
                            && t.delta_to(entry.branch_pc) as u64 <= self.cfg.max_chain_bytes =>
                    {
                        t
                    }
                    _ => entry.branch_pc,
                };
                let run_bytes = run_start.delta_to(entry.branch_pc).unsigned_abs() + 4;
                for line in lines_spanned(run_start, run_bytes) {
                    if !hierarchy.probe_l2(line) {
                        self.pending_lines.push_back(line);
                    }
                }
            }
            self.prev_target = Some(entry.target);
            let md = self.bytes_per_entry.ceil() as u64;
            out.metadata_bytes += md;
            self.stats.metadata_bytes += md;
            progress = true;
        }
        progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecConfig, Encoder};
    use ignite_uarch::btb::BranchKind;
    use ignite_uarch::config::UarchConfig;

    struct Machine {
        btb: Btb,
        cbp: Cbp,
        itlb: Itlb,
        hierarchy: Hierarchy,
    }

    fn machine() -> Machine {
        let cfg = UarchConfig::tiny_for_tests();
        Machine {
            btb: Btb::new(&cfg.btb),
            cbp: Cbp::new(&cfg.cbp),
            itlb: Itlb::new(&cfg.itlb),
            hierarchy: Hierarchy::new(&cfg.hierarchy),
        }
    }

    fn metadata(entries: &[BtbEntry]) -> Metadata {
        let mut enc = Encoder::new(CodecConfig::default());
        for e in entries {
            enc.push(e);
        }
        enc.finish()
    }

    fn run_to_completion(replay: &mut Replayer, m: &mut Machine) {
        let mut now = 0;
        while !replay.is_done() {
            replay.step(now, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
            now += 1;
        }
    }

    #[test]
    fn restores_btb_bim_itlb_and_l2() {
        let mut m = machine();
        let entries = [
            BtbEntry::new(Addr::new(0x1020), Addr::new(0x1100), BranchKind::Conditional),
            BtbEntry::new(Addr::new(0x1140), Addr::new(0x2000), BranchKind::Call),
        ];
        let md = metadata(&entries);
        let mut replay = Replayer::new(&md, ReplayConfig::default());
        run_to_completion(&mut replay, &mut m);

        // BTB restored.
        assert!(m.btb.probe(Addr::new(0x1020)).is_some());
        assert!(m.btb.probe(Addr::new(0x1140)).is_some());
        // BIM weakly taken for the conditional.
        assert!(m.cbp.bimodal().predict(Addr::new(0x1020)));
        // ITLB warmed.
        assert!(m.itlb.probe(Addr::new(0x1020)));
        // Code blocks in the L2: the run [0x1100, 0x1140] was chained.
        assert!(m.hierarchy.probe_l2(Addr::new(0x1020)));
        assert!(m.hierarchy.probe_l2(Addr::new(0x1100)));
        assert_eq!(replay.stats().entries_restored, 2);
        assert_eq!(replay.stats().bim_initialized, 1);
    }

    #[test]
    fn pacing_limits_entries_per_cycle() {
        let mut m = machine();
        let entries: Vec<_> = (0..10u64)
            .map(|i| {
                BtbEntry::new(
                    Addr::new(0x1000 + i * 32),
                    Addr::new(0x1000 + i * 32 + 8),
                    BranchKind::Conditional,
                )
            })
            .collect();
        let md = metadata(&entries);
        let mut replay = Replayer::new(&md, ReplayConfig::default());
        let step = replay.step(0, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
        assert_eq!(step.entries_restored, 2);
        assert!(!replay.is_done());
    }

    #[test]
    fn throttles_when_restored_entries_pile_up() {
        let mut m = machine();
        let entries: Vec<_> = (0..100u64)
            .map(|i| {
                BtbEntry::new(
                    Addr::new(0x1000 + i * 32),
                    Addr::new(0x1000 + i * 32 + 8),
                    BranchKind::Conditional,
                )
            })
            .collect();
        let md = metadata(&entries);
        let cfg = ReplayConfig { throttle_threshold: 10, ..ReplayConfig::default() };
        let mut replay = Replayer::new(&md, cfg);
        let mut throttled = false;
        for now in 0..50 {
            let s = replay.step(now, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
            if s.throttled {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "replay must throttle at the threshold");
        assert!(replay.stats().entries_restored <= 12);

        // Touching restored entries un-throttles replay.
        for i in 0..6u64 {
            m.btb.lookup(Addr::new(0x1000 + i * 32));
        }
        let s = replay.step(100, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
        assert!(!s.throttled);
        assert!(s.entries_restored > 0);
    }

    #[test]
    fn bim_policy_none_leaves_bim_cold() {
        let mut m = machine();
        let entries =
            [BtbEntry::new(Addr::new(0x1020), Addr::new(0x1100), BranchKind::Conditional)];
        let md = metadata(&entries);
        let cfg = ReplayConfig { bim_policy: BimInitPolicy::None, ..ReplayConfig::default() };
        let mut replay = Replayer::new(&md, cfg);
        run_to_completion(&mut replay, &mut m);
        assert_eq!(replay.stats().bim_initialized, 0);
        assert!(!m.cbp.bimodal().predict(Addr::new(0x1020)), "default counter untouched");
    }

    #[test]
    fn instruction_prefetch_can_be_disabled() {
        let mut m = machine();
        let entries =
            [BtbEntry::new(Addr::new(0x1020), Addr::new(0x1100), BranchKind::Conditional)];
        let md = metadata(&entries);
        let cfg = ReplayConfig { prefetch_instructions: false, ..ReplayConfig::default() };
        let mut replay = Replayer::new(&md, cfg);
        run_to_completion(&mut replay, &mut m);
        assert!(!m.hierarchy.probe_l2(Addr::new(0x1020)));
        assert!(m.btb.probe(Addr::new(0x1020)).is_some());
    }

    #[test]
    fn metadata_traffic_matches_stream_size() {
        let mut m = machine();
        let entries: Vec<_> = (0..50u64)
            .map(|i| {
                BtbEntry::new(
                    Addr::new(0x1000 + i * 32),
                    Addr::new(0x1000 + i * 32 + 8),
                    BranchKind::Conditional,
                )
            })
            .collect();
        let md = metadata(&entries);
        let mut replay = Replayer::new(&md, ReplayConfig::default());
        run_to_completion(&mut replay, &mut m);
        let streamed = replay.stats().metadata_bytes;
        let actual = md.byte_len() as u64;
        assert!(
            streamed >= actual && streamed <= actual + 50,
            "streamed {streamed} vs stored {actual}"
        );
    }

    #[test]
    fn empty_metadata_completes_immediately() {
        let md = metadata(&[]);
        let replay = Replayer::new(&md, ReplayConfig::default());
        assert!(replay.is_done());
    }

    #[test]
    fn corrupt_region_dropped_wholesale_by_validation() {
        let entries: Vec<_> = (0..30u64)
            .map(|i| {
                BtbEntry::new(
                    Addr::new(0x1000 + i * 32),
                    Addr::new(0x1000 + i * 32 + 8),
                    BranchKind::Conditional,
                )
            })
            .collect();
        let md = metadata(&entries);
        let mut image = md.to_bytes();
        let last = image.len() - 1;
        image[last] ^= 0x10; // flip a payload bit
        let corrupt = Metadata::from_bytes(&image).expect("structurally intact");
        let replay = Replayer::new(&corrupt, ReplayConfig::default());
        assert!(replay.is_done(), "invalid region must be dropped wholesale");
        assert_eq!(replay.stats().decode_errors, 1);
        assert_eq!(replay.stats().entries_dropped, 30);
    }

    #[test]
    fn without_validation_decode_stops_at_first_error() {
        let entries: Vec<_> = (0..30u64)
            .map(|i| {
                BtbEntry::new(
                    Addr::new(0x1000 + i * 32),
                    Addr::new(0x1000 + i * 32 + 8),
                    BranchKind::Conditional,
                )
            })
            .collect();
        let md = metadata(&entries);
        let mut image = md.to_bytes();
        let cut = image.len() - 8;
        image.truncate(cut);
        // Patch the payload length so the header stays structurally valid:
        // this models a partial write that the checksum would catch.
        let payload = (cut - 20) as u32;
        image[16..20].copy_from_slice(&payload.to_le_bytes());
        let corrupt = Metadata::from_bytes(&image).expect("structurally intact");
        let cfg = ReplayConfig { validate_metadata: false, ..ReplayConfig::default() };
        let replay = Replayer::new(&corrupt, cfg);
        let kept = replay.total_entries();
        assert!(kept < 30, "truncated stream must lose records");
        assert_eq!(replay.stats().decode_errors, 1);
        assert_eq!(replay.stats().entries_dropped, 30 - kept as u64);
    }

    #[test]
    fn watchdog_abandons_permanently_throttled_replay() {
        let mut m = machine();
        let entries: Vec<_> = (0..40u64)
            .map(|i| {
                BtbEntry::new(
                    Addr::new(0x1000 + i * 32),
                    Addr::new(0x1000 + i * 32 + 8),
                    BranchKind::Conditional,
                )
            })
            .collect();
        let md = metadata(&entries);
        let cfg = ReplayConfig {
            throttle_threshold: 0,
            watchdog_stall_steps: 8,
            prefetch_instructions: false,
            ..ReplayConfig::default()
        };
        let mut replay = Replayer::new(&md, cfg);
        // Nothing ever consumes the restored entries, so after the first
        // productive step replay is throttled forever — the watchdog must
        // terminate it within a bounded number of cycles.
        for now in 0..100 {
            replay.step(now, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
            if replay.is_done() {
                break;
            }
        }
        assert!(replay.is_done(), "watchdog must end a stalled replay");
        assert_eq!(replay.stats().watchdog_abandons, 1);
        assert!(replay.stats().entries_dropped > 0);
        assert!(replay.stats().entries_restored < 40);
    }

    #[test]
    fn unreadable_region_accounts_drops() {
        let replay = Replayer::unreadable(17, ReplayConfig::default());
        assert!(replay.is_done());
        assert_eq!(replay.stats().decode_errors, 1);
        assert_eq!(replay.stats().entries_dropped, 17);
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = ReplayStats { entries_restored: 1, decode_errors: 2, ..Default::default() };
        let b = ReplayStats { entries_restored: 3, stale_restored: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.entries_restored, 4);
        assert_eq!(a.decode_errors, 2);
        assert_eq!(a.stale_restored, 4);
    }
}
