//! A bounded, node-wide Ignite metadata store.
//!
//! The paper sizes one metadata region per container (120 KiB, §5.3) and
//! notes that regions live in ordinary DRAM managed by the OS. On a real
//! worker serving thousands of containers the *aggregate* footprint is what
//! matters: the host caps how much DRAM it donates to Ignite and evicts
//! regions of functions that have gone quiet. [`MetadataStore`] models that
//! cap — a capacity in bytes plus an eviction policy — and accounts every
//! byte moved in or out so the cluster simulator can charge record/replay
//! DRAM bandwidth and report hit rates and footprint.
//!
//! All bookkeeping uses `BTreeMap` (deterministic iteration order): victim
//! selection must be bit-reproducible across processes.

use std::collections::BTreeMap;

use crate::codec::Metadata;

/// Which region to sacrifice when the store is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used region.
    Lru,
    /// Evict the largest region first (ties broken by recency): frees the
    /// most bytes per eviction, at the cost of punishing big functions.
    SizeAware,
    /// LRU among regions that are *not* pinned; the `pinned_hot` regions
    /// with the highest hit counts are protected (evicted only if nothing
    /// else remains).
    PinHot,
}

impl EvictionPolicy {
    /// Stable lowercase name, as written into reports.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::SizeAware => "size-aware",
            EvictionPolicy::PinHot => "pin-hot",
        }
    }

    /// Parses a policy name (the inverse of [`EvictionPolicy::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(EvictionPolicy::Lru),
            "size-aware" => Some(EvictionPolicy::SizeAware),
            "pin-hot" => Some(EvictionPolicy::PinHot),
            _ => None,
        }
    }
}

/// Store sizing and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Total bytes the store may hold (0 disables storage entirely).
    pub capacity_bytes: usize,
    /// Eviction policy when a new region does not fit.
    pub policy: EvictionPolicy,
    /// For [`EvictionPolicy::PinHot`]: how many of the hottest regions
    /// (by lifetime hit count) are protected from eviction.
    pub pinned_hot: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        // Room for a few dozen reduced-scale regions: bounded, but not
        // starved, matching the paper's "tens of KiB per function" regime.
        StoreConfig { capacity_bytes: 256 * 1024, policy: EvictionPolicy::Lru, pinned_hot: 4 }
    }
}

/// Lifetime counters (all monotonically increasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Fetches that found a region.
    pub hits: u64,
    /// Fetches that found nothing (cold or evicted).
    pub misses: u64,
    /// Regions written (fresh recordings and double-buffer merges).
    pub insertions: u64,
    /// Regions evicted to make room.
    pub evictions: u64,
    /// Regions rejected outright (larger than the whole store).
    pub rejected: u64,
    /// Bytes streamed out of the store on fetch (replay-side DRAM reads).
    pub bytes_read: u64,
    /// Bytes streamed into the store on insert (record-side DRAM writes).
    pub bytes_written: u64,
    /// Bytes discarded by eviction.
    pub bytes_evicted: u64,
}

impl StoreStats {
    /// Fraction of fetches that hit, 0.0 when nothing was fetched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    md: Metadata,
    last_used: u64,
    hits: u64,
}

/// What one [`MetadataStore::insert`] did, for observability: the
/// cluster layer turns evictions/rejections into timeline events
/// without this crate depending on the sink machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Regions evicted to make room, as `(container, bytes)` in
    /// eviction order. Empty in the common case (no allocation).
    pub evicted: Vec<(u64, usize)>,
    /// The region was larger than the whole store and was dropped.
    pub rejected: bool,
    /// The insert replaced a region already resident under this key.
    pub replaced: bool,
}

/// The bounded store: container id → region, with capacity enforcement.
#[derive(Debug, Clone)]
pub struct MetadataStore {
    cfg: StoreConfig,
    entries: BTreeMap<u64, Entry>,
    /// Logical clock advanced on every fetch/insert (recency order).
    clock: u64,
    total_bytes: usize,
    peak_bytes: usize,
    stats: StoreStats,
}

impl MetadataStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        MetadataStore {
            cfg,
            entries: BTreeMap::new(),
            clock: 0,
            total_bytes: 0,
            peak_bytes: 0,
            stats: StoreStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Bytes currently resident.
    pub fn footprint_bytes(&self) -> usize {
        self.total_bytes
    }

    /// High-water mark of [`MetadataStore::footprint_bytes`].
    pub fn peak_footprint_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of resident regions.
    pub fn regions(&self) -> usize {
        self.entries.len()
    }

    /// Whether `container` is resident — without counting a hit or a
    /// miss, and without touching recency. The cluster scheduler's
    /// affinity probe uses this so that *routing* decisions never
    /// perturb the store's observable statistics.
    pub fn contains(&self, container: u64) -> bool {
        self.entries.contains_key(&container)
    }

    /// Fetches `container`'s region for replay, counting a hit or miss and
    /// charging the read bandwidth.
    pub fn fetch(&mut self, container: u64) -> Option<&Metadata> {
        self.clock += 1;
        match self.entries.get_mut(&container) {
            Some(e) => {
                e.last_used = self.clock;
                e.hits += 1;
                self.stats.hits += 1;
                self.stats.bytes_read += e.md.byte_len() as u64;
                Some(&e.md)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Drops `container`'s region outright (detected corruption or loss:
    /// a region known bad must not be served again). Returns the freed
    /// byte count. Deliberately does not touch [`StoreStats`] — the
    /// caller accounts the drop under its own failure taxonomy, and the
    /// store's hit/eviction counters keep their chaos-free meaning.
    pub fn remove(&mut self, container: u64) -> Option<usize> {
        let e = self.entries.remove(&container)?;
        let len = e.md.byte_len();
        self.total_bytes -= len;
        Some(len)
    }

    /// Inserts (or replaces) `container`'s region, evicting per policy
    /// until it fits. A region larger than the whole store is rejected —
    /// evicting everything for an entry that cannot help anyone else would
    /// be strictly worse than dropping it.
    pub fn insert(&mut self, container: u64, md: Metadata) -> InsertOutcome {
        self.insert_protected(container, md, &|_| false)
    }

    /// [`MetadataStore::insert`] with keep-alive protection: containers
    /// for which `keep` holds are passed over during victim selection
    /// and evicted only if nothing unprotected remains (the same
    /// last-resort rule PinHot uses, so capacity is always honored).
    /// With a `keep` that never holds this is the plain insert, branch
    /// for branch.
    pub fn insert_protected(
        &mut self,
        container: u64,
        md: Metadata,
        keep: &dyn Fn(u64) -> bool,
    ) -> InsertOutcome {
        let mut outcome = InsertOutcome::default();
        if md.is_empty() {
            return outcome;
        }
        let len = md.byte_len();
        // Reject before touching resident state: an oversized replacement
        // must not tear down the region it failed to replace (and must
        // not disturb the footprint accounting while doing so).
        if len > self.cfg.capacity_bytes {
            self.stats.rejected += 1;
            outcome.rejected = true;
            return outcome;
        }
        // A replaced region keeps its hit history: re-recording a hot
        // function must not strip its PinHot protection.
        let prior_hits = match self.entries.remove(&container) {
            Some(old) => {
                self.total_bytes -= old.md.byte_len();
                outcome.replaced = true;
                old.hits
            }
            None => 0,
        };
        while self.total_bytes + len > self.cfg.capacity_bytes {
            let victim = self.pick_victim(keep).expect("non-empty store while over capacity");
            let e = self.entries.remove(&victim).expect("victim resident");
            self.total_bytes -= e.md.byte_len();
            self.stats.evictions += 1;
            self.stats.bytes_evicted += e.md.byte_len() as u64;
            outcome.evicted.push((victim, e.md.byte_len()));
        }
        self.clock += 1;
        self.stats.insertions += 1;
        self.stats.bytes_written += len as u64;
        self.total_bytes += len;
        // Peak is sampled *after* the insert lands so overwrite-with-larger
        // is captured at its true high-water mark.
        self.peak_bytes = self.peak_bytes.max(self.total_bytes);
        self.entries.insert(container, Entry { md, last_used: self.clock, hits: prior_hits });
        outcome
    }

    /// The container to evict next: the policy's choice among unkept
    /// regions, falling back to the whole store when keep-alive has
    /// pinned everything resident.
    fn pick_victim(&self, keep: &dyn Fn(u64) -> bool) -> Option<u64> {
        self.pick_victim_among(&|c| !keep(c)).or_else(|| self.pick_victim_among(&|_| true))
    }

    /// The configured policy's victim among containers passing
    /// `allowed`.
    ///
    /// Every comparison ends in the container id, so victim selection is a
    /// total order — deterministic regardless of insertion history.
    fn pick_victim_among(&self, allowed: &dyn Fn(u64) -> bool) -> Option<u64> {
        let lru = |it: &mut dyn Iterator<Item = (&u64, &Entry)>| {
            it.min_by_key(|(c, e)| (e.last_used, **c)).map(|(c, _)| *c)
        };
        match self.cfg.policy {
            EvictionPolicy::Lru => lru(&mut self.entries.iter().filter(|(c, _)| allowed(**c))),
            EvictionPolicy::SizeAware => self
                .entries
                .iter()
                .filter(|(c, _)| allowed(**c))
                .min_by_key(|(c, e)| (std::cmp::Reverse(e.md.byte_len()), e.last_used, **c))
                .map(|(c, _)| *c),
            EvictionPolicy::PinHot => {
                // The `pinned_hot` hottest regions (by hit count, ties to
                // lower container id) are protected. Heat is ranked over
                // the whole store, not just the allowed part, so
                // keep-alive pins never promote a lukewarm region into
                // the protected set.
                let mut by_heat: Vec<(u64, u64)> =
                    self.entries.iter().map(|(c, e)| (e.hits, *c)).collect();
                by_heat.sort_by_key(|&(hits, c)| (std::cmp::Reverse(hits), c));
                let pinned: Vec<u64> =
                    by_heat.iter().take(self.cfg.pinned_hot).map(|&(_, c)| c).collect();
                lru(&mut self.entries.iter().filter(|(c, _)| allowed(**c) && !pinned.contains(c)))
                    .or_else(|| lru(&mut self.entries.iter().filter(|(c, _)| allowed(**c))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecConfig, Encoder};
    use ignite_uarch::addr::Addr;
    use ignite_uarch::btb::{BranchKind, BtbEntry};

    /// A region of roughly `entries` records (size grows with `entries`).
    fn region(entries: u64) -> Metadata {
        let mut enc = Encoder::new(CodecConfig::default());
        for i in 0..entries {
            enc.push(&BtbEntry::new(
                Addr::new(0x1000 + i * 64),
                Addr::new(0x1000 + i * 64 + 16),
                BranchKind::Conditional,
            ));
        }
        enc.finish()
    }

    fn store(capacity: usize, policy: EvictionPolicy) -> MetadataStore {
        MetadataStore::new(StoreConfig { capacity_bytes: capacity, policy, pinned_hot: 1 })
    }

    #[test]
    fn fetch_miss_then_hit() {
        let mut s = store(4096, EvictionPolicy::Lru);
        assert!(s.fetch(1).is_none());
        s.insert(1, region(10));
        assert!(s.fetch(1).is_some());
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().misses, 1);
        assert!(s.stats().bytes_read > 0);
        assert!((s.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let one = region(10).byte_len();
        let mut s = store(one * 3 + 2, EvictionPolicy::Lru);
        for c in 0..3 {
            s.insert(c, region(10));
        }
        s.fetch(0); // 1 is now LRU
        s.insert(3, region(10));
        assert!(s.fetch(1).is_none(), "LRU region evicted");
        assert!(s.fetch(0).is_some());
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn size_aware_evicts_largest() {
        let small = region(5).byte_len();
        let big = region(60).byte_len();
        let mut s = store(big + small * 2 + 2, EvictionPolicy::SizeAware);
        s.insert(0, region(60));
        s.insert(1, region(5));
        s.insert(2, region(5));
        s.fetch(0); // most recently used, but biggest
        s.insert(3, region(30));
        assert!(s.fetch(0).is_none(), "largest region evicted despite recency");
        assert!(s.fetch(1).is_some());
    }

    #[test]
    fn pin_hot_protects_hot_region() {
        let one = region(10).byte_len();
        let mut s = store(one * 2 + 2, EvictionPolicy::PinHot);
        s.insert(0, region(10));
        s.insert(1, region(10));
        for _ in 0..5 {
            s.fetch(0); // 0 is hot...
        }
        s.fetch(1); // ...but 1 is more recent
        s.insert(2, region(10));
        assert!(s.fetch(0).is_some(), "hot region pinned");
        assert!(s.fetch(1).is_none(), "unpinned LRU region evicted");
    }

    #[test]
    fn oversized_region_rejected_without_eviction() {
        let mut s = store(region(10).byte_len(), EvictionPolicy::Lru);
        s.insert(0, region(10));
        s.insert(1, region(500));
        assert_eq!(s.stats().rejected, 1);
        assert!(s.fetch(0).is_some(), "resident regions survive a rejected insert");
    }

    #[test]
    fn footprint_tracks_bytes() {
        let mut s = store(1 << 20, EvictionPolicy::Lru);
        s.insert(0, region(10));
        let after_one = s.footprint_bytes();
        s.insert(1, region(20));
        assert!(s.footprint_bytes() > after_one);
        assert_eq!(s.peak_footprint_bytes(), s.footprint_bytes());
        s.insert(0, region(2)); // replacement shrinks the footprint
        assert!(s.footprint_bytes() < s.peak_footprint_bytes());
        assert_eq!(s.regions(), 2);
    }

    #[test]
    fn oversized_replacement_preserves_resident_region() {
        // Regression: `insert` used to remove the resident entry (and
        // debit its bytes) before the oversized-rejection check, so a
        // too-big replacement silently destroyed the region it failed
        // to replace.
        let mut s = store(region(10).byte_len(), EvictionPolicy::Lru);
        s.insert(0, region(10));
        let footprint = s.footprint_bytes();
        let outcome = s.insert(0, region(500));
        assert!(outcome.rejected);
        assert!(!outcome.replaced);
        assert_eq!(s.stats().rejected, 1);
        assert!(s.fetch(0).is_some(), "resident region must survive a rejected replacement");
        assert_eq!(s.footprint_bytes(), footprint, "rejected insert must not move accounting");
        assert_eq!(s.regions(), 1);
    }

    #[test]
    fn overwrite_grow_samples_peak_after_insert() {
        let mut s = store(1 << 20, EvictionPolicy::Lru);
        s.insert(0, region(10));
        s.insert(1, region(10));
        let before = s.footprint_bytes();
        s.insert(0, region(40)); // overwrite with a larger blob
        let after = s.footprint_bytes();
        assert!(after > before);
        assert_eq!(
            s.peak_footprint_bytes(),
            after,
            "peak must include the grown replacement, not the pre-insert footprint"
        );
    }

    #[test]
    fn overwrite_shrink_keeps_prior_peak() {
        let mut s = store(1 << 20, EvictionPolicy::Lru);
        s.insert(0, region(40));
        s.insert(1, region(10));
        let high_water = s.footprint_bytes();
        s.insert(0, region(2)); // overwrite with a smaller blob
        assert!(s.footprint_bytes() < high_water);
        assert_eq!(s.peak_footprint_bytes(), high_water, "peak is a high-water mark");
    }

    #[test]
    fn evict_then_reinsert_keeps_peak_monotone() {
        let one = region(10).byte_len();
        let mut s = store(one * 2 + 2, EvictionPolicy::Lru);
        s.insert(0, region(10));
        s.insert(1, region(10));
        let full = s.footprint_bytes();
        let outcome = s.insert(2, region(10)); // evicts 0
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].0, 0);
        let peak_after_evict = s.peak_footprint_bytes();
        s.insert(0, region(10)); // evicts again; footprint never exceeded `full`
        assert!(s.peak_footprint_bytes() >= s.footprint_bytes());
        assert_eq!(s.peak_footprint_bytes(), peak_after_evict);
        assert_eq!(s.peak_footprint_bytes(), full.max(s.footprint_bytes()));
    }

    #[test]
    fn insert_outcome_reports_replacement() {
        let mut s = store(1 << 20, EvictionPolicy::Lru);
        let fresh = s.insert(0, region(10));
        assert!(!fresh.replaced && !fresh.rejected && fresh.evicted.is_empty());
        let replaced = s.insert(0, region(12));
        assert!(replaced.replaced);
    }

    #[test]
    fn contains_probe_is_invisible_to_stats_and_recency() {
        let one = region(10).byte_len();
        let mut s = store(one * 2 + 2, EvictionPolicy::Lru);
        s.insert(0, region(10));
        s.insert(1, region(10));
        assert!(s.contains(0) && s.contains(1) && !s.contains(2));
        assert_eq!(s.stats().hits + s.stats().misses, 0, "probing must not count");
        // Probing 0 did not refresh it: it is still the LRU victim.
        s.insert(2, region(10));
        assert!(!s.contains(0), "probe must not touch recency");
    }

    #[test]
    fn insert_protected_skips_kept_regions_until_forced() {
        let one = region(10).byte_len();
        let mut s = store(one * 2 + 2, EvictionPolicy::Lru);
        s.insert(0, region(10));
        s.insert(1, region(10));
        // 0 is the LRU victim, but keep-alive protects it: 1 goes instead.
        let out = s.insert_protected(2, region(10), &|c| c == 0);
        assert_eq!(out.evicted, vec![(1, one)]);
        assert!(s.contains(0));
        // Everything resident protected: capacity still wins (last resort,
        // policy order among the kept).
        let out = s.insert_protected(3, region(10), &|_| true);
        assert_eq!(out.evicted.len(), 1);
        assert!(s.footprint_bytes() <= s.config().capacity_bytes);
    }

    #[test]
    fn insert_protected_with_never_keep_is_plain_insert() {
        let one = region(10).byte_len();
        let mut a = store(one * 2 + 2, EvictionPolicy::PinHot);
        let mut b = store(one * 2 + 2, EvictionPolicy::PinHot);
        for c in 0..5u64 {
            let oa = a.insert(c, region(10));
            let ob = b.insert_protected(c, region(10), &|_| false);
            assert_eq!(oa, ob);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [EvictionPolicy::Lru, EvictionPolicy::SizeAware, EvictionPolicy::PinHot] {
            assert_eq!(EvictionPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(EvictionPolicy::parse("fifo"), None);
    }

    mod adversarial {
        //! Property tests over adversarial fetch/insert/remove
        //! interleavings (the chaos layer removes regions out from under
        //! the simulator, so `remove` now composes with everything).
        //! A mirror model is advanced from each operation's observable
        //! outcome and cross-checked against the store's accounting.

        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Fetch(u64),
            Insert(u64, u64),
            Remove(u64),
        }

        fn op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..6).prop_map(Op::Fetch),
                ((0u64..6), (1u64..40)).prop_map(|(c, n)| Op::Insert(c, n)),
                (0u64..6).prop_map(Op::Remove),
            ]
        }

        /// The `pinned_hot` hottest containers of the model, mirroring
        /// `pick_victim`'s protection order (hits desc, container asc).
        fn pinned(model: &std::collections::BTreeMap<u64, (usize, u64)>, k: usize) -> Vec<u64> {
            let mut by_heat: Vec<(u64, u64)> =
                model.iter().map(|(&c, &(_, hits))| (hits, c)).collect();
            by_heat.sort_by_key(|&(hits, c)| (std::cmp::Reverse(hits), c));
            by_heat.iter().take(k).map(|&(_, c)| c).collect()
        }

        fn check(policy: EvictionPolicy, ops: Vec<Op>) {
            let capacity = region(12).byte_len() * 3;
            let pinned_hot = 1;
            let mut s =
                MetadataStore::new(StoreConfig { capacity_bytes: capacity, policy, pinned_hot });
            // container -> (byte_len, hits), advanced from outcomes only.
            let mut model: std::collections::BTreeMap<u64, (usize, u64)> =
                std::collections::BTreeMap::new();
            for op in ops {
                match op {
                    Op::Fetch(c) => match s.fetch(c) {
                        Some(md) => {
                            let e = model.get_mut(&c).expect("hit on a region the model lost");
                            assert_eq!(e.0, md.byte_len());
                            e.1 += 1;
                        }
                        None => assert!(!model.contains_key(&c), "miss on a resident region"),
                    },
                    Op::Remove(c) => match s.remove(c) {
                        Some(len) => {
                            let e = model.remove(&c).expect("removed a region the model lost");
                            assert_eq!(e.0, len);
                        }
                        None => assert!(!model.contains_key(&c), "remove missed a resident region"),
                    },
                    Op::Insert(c, n) => {
                        let md = region(n);
                        let len = md.byte_len();
                        let out = s.insert(c, md);
                        if out.rejected {
                            assert!(len > capacity, "fitting region rejected");
                            continue;
                        }
                        // Mirror insert order: the target leaves first,
                        // then victims are evicted one at a time.
                        let prior = model.remove(&c);
                        assert_eq!(out.replaced, prior.is_some());
                        for &(victim, vlen) in &out.evicted {
                            if policy == EvictionPolicy::PinHot {
                                let protected = pinned(&model, pinned_hot);
                                let unpinned_left = model.keys().any(|k| !protected.contains(k));
                                assert!(
                                    !protected.contains(&victim) || !unpinned_left,
                                    "pinned region {victim} evicted while an unpinned \
                                     victim was available"
                                );
                            }
                            let e = model.remove(&victim).expect("evicted a region the model lost");
                            assert_eq!(e.0, vlen);
                        }
                        model.insert(c, (len, prior.map_or(0, |p| p.1)));
                    }
                }
                assert!(
                    s.footprint_bytes() <= capacity,
                    "footprint {} over capacity {capacity}",
                    s.footprint_bytes()
                );
                let expected: usize = model.values().map(|&(len, _)| len).sum();
                assert_eq!(s.footprint_bytes(), expected, "footprint drifted from the model");
                assert_eq!(s.regions(), model.len(), "region count drifted from the model");
                assert!(s.peak_footprint_bytes() >= s.footprint_bytes());
            }
        }

        proptest! {
            #[test]
            fn lru_accounting_survives_interleavings(ops in proptest::collection::vec(op(), 1..80)) {
                check(EvictionPolicy::Lru, ops);
            }

            #[test]
            fn size_aware_accounting_survives_interleavings(
                ops in proptest::collection::vec(op(), 1..80),
            ) {
                check(EvictionPolicy::SizeAware, ops);
            }

            #[test]
            fn pin_hot_never_loses_a_pinned_region_early(
                ops in proptest::collection::vec(op(), 1..80),
            ) {
                check(EvictionPolicy::PinHot, ops);
            }
        }
    }
}
