//! Fault injection for stored metadata regions.
//!
//! Ignite's metadata lives in plain main memory between invocations (§4.3),
//! with no hardware protection: by the time it is replayed it may have been
//! partially overwritten, truncated by an interrupted writeback, or gone
//! stale because the function's code changed underneath it. The paper's
//! correctness argument (§4.2) is that all of these degrade into ordinary
//! front-end misses — never incorrect execution, never pathological
//! slowdown. This module makes that claim testable: a [`FaultPlan`] mutates
//! the serialized region image deterministically between the write of one
//! invocation and the read of the next, so experiments (`sweep faults`) can
//! measure the degradation curve instead of assuming it.
//!
//! Five fault classes are modelled, each with an independent rate:
//!
//! * **bit flips** — each payload/header bit flips independently;
//! * **truncation** — the region image is cut at a random byte (partial
//!   write, as in interrupted snapshot restoration);
//! * **staleness** — a fraction of recorded branches are re-targeted to a
//!   nearby wrong address, simulating code drift between invocations; the
//!   region is re-encoded with a *valid* checksum, so these faults flow all
//!   the way to the BTB and must be corrected by the resteer path;
//! * **duplication** — a span of the image is copied over another location
//!   (torn/replayed write);
//! * **whole-region loss** — the region vanishes (container migration,
//!   page reclaimed), leaving the invocation to run cold.
//!
//! Rates are stored in parts-per-million as integers so [`FaultPlan`] stays
//! `Copy + Eq + Hash` and can live inside `IgniteConfig`.

use ignite_uarch::rng::SplitMix64;

use crate::codec::{CodecError, Encoder, Metadata};

/// One million — the denominator for all fault rates.
pub const PPM_SCALE: u32 = 1_000_000;

/// A deterministic, seedable plan for corrupting stored metadata.
///
/// All rates are expressed in parts per million (`1_000_000` = always).
/// The default plan injects nothing. Mutations are a pure function of
/// `(seed, container, invocation)`, so parallel and serial harness runs see
/// identical faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed decorrelating this plan from others with equal rates.
    pub seed: u64,
    /// Per-bit flip probability over the serialized image.
    pub bit_flip_ppm: u32,
    /// Per-entry probability of re-targeting a recorded branch.
    pub stale_ppm: u32,
    /// Per-invocation probability of truncating the image at a random byte.
    pub truncate_ppm: u32,
    /// Per-invocation probability of duplicating a span over another.
    pub duplicate_ppm: u32,
    /// Per-invocation probability of losing the whole region.
    pub loss_ppm: u32,
}

impl FaultPlan {
    /// The inert plan: no faults ever fire.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            bit_flip_ppm: 0,
            stale_ppm: 0,
            truncate_ppm: 0,
            duplicate_ppm: 0,
            loss_ppm: 0,
        }
    }

    /// Converts a `[0, 1]` rate to parts per million, saturating.
    pub fn ppm(rate: f64) -> u32 {
        (rate.clamp(0.0, 1.0) * f64::from(PPM_SCALE)).round() as u32
    }

    /// A plan that only flips bits, at `rate` per bit.
    pub fn bit_flips(rate: f64, seed: u64) -> Self {
        FaultPlan { seed, bit_flip_ppm: Self::ppm(rate), ..Self::none() }
    }

    /// A plan that only injects stale (re-targeted) entries, at `rate` per
    /// entry.
    pub fn stale(rate: f64, seed: u64) -> Self {
        FaultPlan { seed, stale_ppm: Self::ppm(rate), ..Self::none() }
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.bit_flip_ppm > 0
            || self.stale_ppm > 0
            || self.truncate_ppm > 0
            || self.duplicate_ppm > 0
            || self.loss_ppm > 0
    }

    /// Applies the plan to a stored region as it is read for `invocation`
    /// of `container`.
    ///
    /// * `Ok(Some(md))` — the region is readable (possibly silently
    ///   corrupted; checksum validation happens at replay time).
    /// * `Ok(None)` — whole-region loss: the invocation runs as if nothing
    ///   was ever recorded.
    /// * `Err(e)` — corruption destroyed the region's structure; the caller
    ///   should account the region's records as dropped.
    pub fn apply(
        &self,
        md: &Metadata,
        container: u64,
        invocation: u64,
    ) -> Result<Option<Metadata>, CodecError> {
        if !self.is_active() {
            return Ok(Some(md.clone()));
        }
        let mut rng = SplitMix64::new(
            self.seed
                ^ container.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ invocation.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        if chance_ppm(&mut rng, self.loss_ppm) {
            return Ok(None);
        }
        // Staleness first: it models the *recorded program* drifting, not
        // memory corruption, so it re-encodes cleanly (valid checksum) and
        // the wrong targets reach the BTB to be fixed by resteers.
        let md = if self.stale_ppm > 0 { self.retarget(md, &mut rng) } else { md.clone() };

        if self.bit_flip_ppm == 0 && self.truncate_ppm == 0 && self.duplicate_ppm == 0 {
            return Ok(Some(md));
        }
        let mut image = md.to_bytes();
        if chance_ppm(&mut rng, self.duplicate_ppm) && image.len() >= 2 {
            let len = rng.range_inclusive(1, (image.len() as u64 / 2).max(1)).min(64) as usize;
            let src = rng.next_below((image.len() - len + 1) as u64) as usize;
            let dst = rng.next_below((image.len() - len + 1) as u64) as usize;
            let span = image[src..src + len].to_vec();
            image[dst..dst + len].copy_from_slice(&span);
        }
        if chance_ppm(&mut rng, self.truncate_ppm) && !image.is_empty() {
            let keep = rng.next_below(image.len() as u64) as usize;
            image.truncate(keep);
        }
        flip_bits(&mut image, self.bit_flip_ppm, &mut rng);
        Metadata::from_bytes(&image).map(Some)
    }

    /// Re-targets a `stale_ppm` fraction of entries to nearby wrong
    /// addresses and re-encodes with the metadata's own widths.
    fn retarget(&self, md: &Metadata, rng: &mut SplitMix64) -> Metadata {
        let mut enc = Encoder::new(md.codec_config());
        for mut entry in md.decode() {
            if chance_ppm(rng, self.stale_ppm) {
                // Code drift: the branch now lands a few cache lines away.
                let delta = rng.range_inclusive(64, 4096) as i64;
                let sign = if rng.chance(0.5) { 1 } else { -1 };
                entry.target = entry.target.offset(sign * delta);
            }
            enc.push(&entry);
        }
        enc.finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn chance_ppm(rng: &mut SplitMix64, ppm: u32) -> bool {
    ppm >= PPM_SCALE || (ppm > 0 && rng.next_below(u64::from(PPM_SCALE)) < u64::from(ppm))
}

/// Flips each bit of `bytes` independently with probability `ppm / 1e6`,
/// using geometric gap sampling so low rates cost O(flips) not O(bits).
fn flip_bits(bytes: &mut [u8], ppm: u32, rng: &mut SplitMix64) {
    if ppm == 0 || bytes.is_empty() {
        return;
    }
    if ppm >= PPM_SCALE {
        for b in bytes.iter_mut() {
            *b = !*b;
        }
        return;
    }
    let total_bits = bytes.len() * 8;
    let p = f64::from(ppm) / f64::from(PPM_SCALE);
    let ln_keep = (1.0 - p).ln();
    let mut pos = 0usize;
    loop {
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / ln_keep) as usize;
        pos = match pos.checked_add(gap) {
            Some(p) if p < total_bits => p,
            _ => break,
        };
        bytes[pos / 8] ^= 1 << (pos % 8);
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecConfig;
    use ignite_uarch::addr::Addr;
    use ignite_uarch::btb::{BranchKind, BtbEntry};

    fn sample(n: u64) -> Metadata {
        let mut enc = Encoder::new(CodecConfig::default());
        for i in 0..n {
            enc.push(&BtbEntry::new(
                Addr::new(0x1000 + i * 32),
                Addr::new(0x1000 + i * 32 + 8),
                BranchKind::Conditional,
            ));
        }
        enc.finish()
    }

    #[test]
    fn inert_plan_is_identity() {
        let md = sample(10);
        let out = FaultPlan::none().apply(&md, 1, 0).unwrap().unwrap();
        assert_eq!(out, md);
        assert!(out.validate().is_ok());
    }

    #[test]
    fn faults_are_deterministic() {
        let md = sample(40);
        let plan = FaultPlan { seed: 7, bit_flip_ppm: 5_000, ..FaultPlan::none() };
        let a = plan.apply(&md, 3, 2);
        let b = plan.apply(&md, 3, 2);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Different invocations draw different faults.
        let c = plan.apply(&md, 3, 5);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn certain_loss_drops_region() {
        let md = sample(10);
        let plan = FaultPlan { loss_ppm: PPM_SCALE, ..FaultPlan::none() };
        assert!(plan.apply(&md, 1, 0).unwrap().is_none());
    }

    #[test]
    fn full_bit_flip_rate_never_parses_silently() {
        let md = sample(10);
        let plan = FaultPlan::bit_flips(1.0, 0);
        // Complementing every bit destroys the magic, so the region is
        // structurally unreadable.
        assert!(plan.apply(&md, 1, 0).is_err());
    }

    #[test]
    fn bit_flips_break_checksum_validation() {
        let md = sample(60);
        let plan = FaultPlan::bit_flips(0.01, 1);
        // Some (container, invocation) points will parse structurally but
        // fail the checksum; others fail structurally. None may validate
        // cleanly *and* differ from the original.
        let mut corrupted_seen = false;
        for inv in 0..20 {
            match plan.apply(&md, 1, inv) {
                Ok(Some(out)) => {
                    if out != md {
                        assert!(out.validate().is_err(), "silent corruption at inv {inv}");
                        corrupted_seen = true;
                    }
                }
                Ok(None) => unreachable!("no loss configured"),
                Err(_) => corrupted_seen = true,
            }
        }
        assert!(corrupted_seen, "1% bit-flip rate fired nowhere in 20 invocations");
    }

    #[test]
    fn stale_faults_reencode_validly() {
        let md = sample(50);
        let plan = FaultPlan::stale(0.5, 3);
        let out = plan.apply(&md, 1, 0).unwrap().unwrap();
        assert!(out.validate().is_ok(), "stale regions must pass validation");
        assert_eq!(out.entries(), md.entries());
        let orig: Vec<_> = md.decode().collect();
        let mutated: Vec<_> = out.decode().collect();
        let moved = orig.iter().zip(&mutated).filter(|(a, b)| a.target != b.target).count();
        assert!(moved > 0, "50% staleness must move some targets");
        assert!(
            orig.iter().zip(&mutated).all(|(a, b)| a.branch_pc == b.branch_pc),
            "staleness must not move branch PCs"
        );
    }

    #[test]
    fn truncation_yields_structural_or_checksum_error() {
        let md = sample(80);
        let plan = FaultPlan { truncate_ppm: PPM_SCALE, seed: 9, ..FaultPlan::none() };
        for inv in 0..10 {
            if let Ok(Some(out)) = plan.apply(&md, 1, inv) {
                assert!(
                    out == md || out.validate().is_err(),
                    "truncated region validated cleanly at inv {inv}"
                );
            }
        }
    }

    #[test]
    fn ppm_conversion_saturates() {
        assert_eq!(FaultPlan::ppm(0.0), 0);
        assert_eq!(FaultPlan::ppm(1.0), PPM_SCALE);
        assert_eq!(FaultPlan::ppm(2.0), PPM_SCALE);
        assert_eq!(FaultPlan::ppm(-1.0), 0);
        assert_eq!(FaultPlan::ppm(0.001), 1_000);
    }
}
