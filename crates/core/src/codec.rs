//! Ignite metadata codec: delta-compressed control-flow records (§4.1).
//!
//! Each record corresponds to one BTB insertion and holds a branch PC, a
//! branch type, and a target. Two deltas compress the two addresses:
//!
//! * the *source delta* — from the previous record's target to this branch's
//!   PC (branches sit close to the start of the block the previous branch
//!   jumped to);
//! * the *target delta* — from this branch's PC to its target (most branches
//!   are local).
//!
//! When a delta exceeds its fixed width, the record falls back to full
//! 48-bit addresses; a single format bit distinguishes the two layouts
//! (paper Fig. 7b).
//!
//! The paper's two mentions of the delta widths disagree (§4.1 footnote:
//! 7-bit branch-PC / 21-bit target; §5.3: 21-bit branch-PC / 7-bit target).
//! Both are constructible here; the default (9-bit source, 21-bit target) is
//! the empirical compression optimum for this repository's workloads — see
//! the `codec_widths` ablation bench.

use ignite_uarch::addr::{Addr, VA_BITS};
use ignite_uarch::btb::{BranchKind, BtbEntry};

/// Number of bits used to encode the branch kind.
const KIND_BITS: u32 = 3;

/// Delta widths for the compressed record format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Signed bits for the previous-target → branch-PC delta.
    pub src_delta_bits: u32,
    /// Signed bits for the branch-PC → target delta.
    pub tgt_delta_bits: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig { src_delta_bits: 9, tgt_delta_bits: 21 }
    }
}

impl CodecConfig {
    /// Bits per compressed record (format + kind + deltas).
    pub const fn compressed_bits(&self) -> u32 {
        1 + KIND_BITS + self.src_delta_bits + self.tgt_delta_bits
    }

    /// Bits per full-address record.
    pub const fn full_bits(&self) -> u32 {
        1 + KIND_BITS + 2 * VA_BITS
    }
}

#[inline]
fn fits_signed(value: i64, bits: u32) -> bool {
    if bits == 0 || bits >= 64 {
        return bits != 0;
    }
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&value)
}

/// LSB-first bit writer.
#[derive(Debug, Clone, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    fn write(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        for i in 0..bits {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            self.bytes[byte_idx] |= (bit as u8) << (self.bit_len % 8);
            self.bit_len += 1;
        }
    }

    fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// LSB-first bit reader.
#[derive(Debug, Clone)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read(&mut self, bits: u32) -> Option<u64> {
        if self.pos + bits as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut v = 0u64;
        for i in 0..bits {
            let byte = self.bytes[self.pos / 8];
            let bit = u64::from((byte >> (self.pos % 8)) & 1);
            v |= bit << i;
            self.pos += 1;
        }
        Some(v)
    }

    fn read_signed(&mut self, bits: u32) -> Option<i64> {
        let raw = self.read(bits)?;
        // Sign-extend.
        let shift = 64 - bits;
        Some(((raw << shift) as i64) >> shift)
    }
}

/// Encoded metadata for one function container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    bytes: Vec<u8>,
    entries: usize,
    cfg_src_bits: u32,
    cfg_tgt_bits: u32,
}

impl Metadata {
    /// Encoded size in bytes (what is streamed to/from memory).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Number of records.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Decodes all records.
    ///
    /// Mirrors the replay engine's sequential read of the stream.
    pub fn decode(&self) -> Decoder<'_> {
        Decoder {
            reader: BitReader::new(&self.bytes),
            remaining: self.entries,
            last_target: None,
            src_bits: self.cfg_src_bits,
            tgt_bits: self.cfg_tgt_bits,
        }
    }
}

/// Streaming encoder for Ignite records.
///
/// # Example
///
/// ```
/// use ignite_core::codec::{CodecConfig, Encoder};
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::{BranchKind, BtbEntry};
///
/// let mut enc = Encoder::new(CodecConfig::default());
/// let entry = BtbEntry::new(Addr::new(0x1000), Addr::new(0x10c0), BranchKind::Call);
/// enc.push(&entry);
/// let metadata = enc.finish();
/// let decoded: Vec<_> = metadata.decode().collect();
/// assert_eq!(decoded, vec![entry]);
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    cfg: CodecConfig,
    writer: BitWriter,
    last_target: Option<Addr>,
    entries: usize,
    compressed: usize,
    full: usize,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new(cfg: CodecConfig) -> Self {
        Encoder { cfg, writer: BitWriter::default(), last_target: None, entries: 0, compressed: 0, full: 0 }
    }

    /// Appends one BTB-insertion record.
    pub fn push(&mut self, entry: &BtbEntry) {
        let compressible = match self.last_target {
            Some(last) => {
                let src = last.delta_to(entry.branch_pc);
                let tgt = entry.branch_pc.delta_to(entry.target);
                fits_signed(src, self.cfg.src_delta_bits)
                    && fits_signed(tgt, self.cfg.tgt_delta_bits)
            }
            None => false,
        };
        if compressible {
            let last = self.last_target.expect("checked above");
            self.writer.write(1, 1);
            self.writer.write(u64::from(entry.kind.code()), KIND_BITS);
            let src = last.delta_to(entry.branch_pc);
            let tgt = entry.branch_pc.delta_to(entry.target);
            self.writer.write(src as u64, self.cfg.src_delta_bits);
            self.writer.write(tgt as u64, self.cfg.tgt_delta_bits);
            self.compressed += 1;
        } else {
            self.writer.write(0, 1);
            self.writer.write(u64::from(entry.kind.code()), KIND_BITS);
            self.writer.write(entry.branch_pc.as_u64(), VA_BITS);
            self.writer.write(entry.target.as_u64(), VA_BITS);
            self.full += 1;
        }
        self.last_target = Some(entry.target);
        self.entries += 1;
    }

    /// Current encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.writer.byte_len()
    }

    /// Records encoded so far.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Records that used the compressed format.
    pub fn compressed_entries(&self) -> usize {
        self.compressed
    }

    /// Records that fell back to full addresses.
    pub fn full_entries(&self) -> usize {
        self.full
    }

    /// Finalizes into immutable metadata.
    pub fn finish(self) -> Metadata {
        Metadata {
            bytes: self.writer.bytes,
            entries: self.entries,
            cfg_src_bits: self.cfg.src_delta_bits,
            cfg_tgt_bits: self.cfg.tgt_delta_bits,
        }
    }
}

/// Iterator over decoded records.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    reader: BitReader<'a>,
    remaining: usize,
    last_target: Option<Addr>,
    src_bits: u32,
    tgt_bits: u32,
}

impl Iterator for Decoder<'_> {
    type Item = BtbEntry;

    fn next(&mut self) -> Option<BtbEntry> {
        if self.remaining == 0 {
            return None;
        }
        let format = self.reader.read(1)?;
        let kind = BranchKind::from_code(self.reader.read(KIND_BITS)? as u8)?;
        let entry = if format == 1 {
            let src = self.reader.read_signed(self.src_bits)?;
            let tgt = self.reader.read_signed(self.tgt_bits)?;
            let last = self.last_target?;
            let pc = last.offset(src);
            BtbEntry::new(pc, pc.offset(tgt), kind)
        } else {
            let pc = Addr::new(self.reader.read(VA_BITS)?);
            let target = Addr::new(self.reader.read(VA_BITS)?);
            BtbEntry::new(pc, target, kind)
        };
        self.last_target = Some(entry.target);
        self.remaining -= 1;
        Some(entry)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Decoder<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64, target: u64, kind: BranchKind) -> BtbEntry {
        BtbEntry::new(Addr::new(pc), Addr::new(target), kind)
    }

    fn roundtrip(cfg: CodecConfig, entries: &[BtbEntry]) -> Metadata {
        let mut enc = Encoder::new(cfg);
        for e in entries {
            enc.push(e);
        }
        let md = enc.finish();
        let decoded: Vec<_> = md.decode().collect();
        assert_eq!(decoded, entries, "roundtrip mismatch");
        md
    }

    #[test]
    fn single_entry_roundtrip() {
        roundtrip(CodecConfig::default(), &[entry(0x1000, 0x1100, BranchKind::Conditional)]);
    }

    #[test]
    fn chain_roundtrip_all_kinds() {
        let entries = vec![
            entry(0x1000, 0x1040, BranchKind::Conditional),
            entry(0x1050, 0x1200, BranchKind::Unconditional),
            entry(0x1210, 0x8000, BranchKind::Call),
            entry(0x8040, 0x1220, BranchKind::Return),
            entry(0x1230, 0x1400, BranchKind::Indirect),
        ];
        roundtrip(CodecConfig::default(), &entries);
    }

    #[test]
    fn local_chain_compresses() {
        // A chain of nearby branches: after the first (full) record, all
        // should use the compressed format.
        let entries: Vec<_> = (0..50u64)
            .map(|i| entry(0x1000 + i * 32, 0x1000 + i * 32 + 16, BranchKind::Conditional))
            .collect();
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        assert_eq!(enc.full_entries(), 1);
        assert_eq!(enc.compressed_entries(), 49);
        let bits_per_entry = enc.byte_len() * 8 / entries.len();
        assert!(bits_per_entry < 40, "{bits_per_entry} bits/entry");
        let md = enc.finish();
        let decoded: Vec<_> = md.decode().collect();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn far_jump_falls_back_to_full() {
        let entries = vec![
            entry(0x1000, 0x1040, BranchKind::Conditional),
            // Target 100 MiB away: exceeds any delta width.
            entry(0x1050, 0x640_0000, BranchKind::Call),
        ];
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        assert_eq!(enc.full_entries(), 2);
        let md = enc.finish();
        assert_eq!(md.decode().collect::<Vec<_>>(), entries);
    }

    #[test]
    fn negative_deltas_roundtrip() {
        // Backward branch: target below PC; next branch PC below previous
        // target.
        let entries = vec![
            entry(0x2000, 0x2100, BranchKind::Conditional),
            entry(0x20f0, 0x2080, BranchKind::Conditional), // src -16, tgt -112
        ];
        roundtrip(CodecConfig::default(), &entries);
    }

    #[test]
    fn paper_width_variants_roundtrip() {
        let entries: Vec<_> = (0..20u64)
            .map(|i| entry(0x1000 + i * 24, 0x1000 + i * 24 + 60, BranchKind::Conditional))
            .collect();
        // §4.1 variant: 7-bit source, 21-bit target.
        roundtrip(CodecConfig { src_delta_bits: 7, tgt_delta_bits: 21 }, &entries);
        // §5.3 variant: 21-bit source, 7-bit target.
        roundtrip(CodecConfig { src_delta_bits: 21, tgt_delta_bits: 7 }, &entries);
    }

    #[test]
    fn compressed_record_size_matches_config() {
        let cfg = CodecConfig::default();
        assert_eq!(cfg.compressed_bits(), 1 + 3 + 9 + 21);
        assert_eq!(cfg.full_bits(), 1 + 3 + 96);
    }

    #[test]
    fn empty_metadata() {
        let md = Encoder::new(CodecConfig::default()).finish();
        assert!(md.is_empty());
        assert_eq!(md.decode().count(), 0);
    }

    #[test]
    fn decoder_len_matches_entries() {
        let md = roundtrip(
            CodecConfig::default(),
            &[
                entry(0x1000, 0x1040, BranchKind::Conditional),
                entry(0x1050, 0x1080, BranchKind::Conditional),
            ],
        );
        assert_eq!(md.decode().len(), 2);
    }

    #[test]
    fn truncated_bytes_yield_none() {
        let mut enc = Encoder::new(CodecConfig::default());
        enc.push(&entry(0x1000, 0x1040, BranchKind::Conditional));
        enc.push(&entry(0x1050, 0x1080, BranchKind::Conditional));
        let mut md = enc.finish();
        md.bytes.truncate(md.bytes.len() - 1);
        let decoded: Vec<_> = md.decode().collect();
        assert!(decoded.len() < 2, "truncated stream must not invent records");
    }

    #[test]
    fn fits_signed_boundaries() {
        assert!(fits_signed(63, 7));
        assert!(!fits_signed(64, 7));
        assert!(fits_signed(-64, 7));
        assert!(!fits_signed(-65, 7));
    }

    #[test]
    fn fig7b_example_deltas() {
        // The paper's Fig. 7b: branch at 0x100F with target 0x10CF gives a
        // branch-PC delta of 0x0F (from previous target 0x1000) and a
        // target delta of 0xC0.
        let prev = entry(0x0800, 0x1000, BranchKind::Call);
        let this = entry(0x100F, 0x10CF, BranchKind::Conditional);
        assert_eq!(Addr::new(0x1000).delta_to(this.branch_pc), 0x0F);
        assert_eq!(this.branch_pc.delta_to(this.target), 0xC0);
        roundtrip(CodecConfig::default(), &[prev, this]);
    }
}
