//! Ignite metadata codec: delta-compressed control-flow records (§4.1).
//!
//! Each record corresponds to one BTB insertion and holds a branch PC, a
//! branch type, and a target. Two deltas compress the two addresses:
//!
//! * the *source delta* — from the previous record's target to this branch's
//!   PC (branches sit close to the start of the block the previous branch
//!   jumped to);
//! * the *target delta* — from this branch's PC to its target (most branches
//!   are local).
//!
//! When a delta exceeds its fixed width, the record falls back to full
//! 48-bit addresses; a single format bit distinguishes the two layouts
//! (paper Fig. 7b).
//!
//! The paper's two mentions of the delta widths disagree (§4.1 footnote:
//! 7-bit branch-PC / 21-bit target; §5.3: 21-bit branch-PC / 7-bit target).
//! Both are constructible here; the default (9-bit source, 21-bit target) is
//! the empirical compression optimum for this repository's workloads — see
//! the `codec_widths` ablation bench.

use std::fmt;

use ignite_uarch::addr::{Addr, VA_BITS};
use ignite_uarch::btb::{BranchKind, BtbEntry};

/// Number of bits used to encode the branch kind.
const KIND_BITS: u32 = 3;

/// Magic bytes opening a serialized metadata region.
const MAGIC: [u8; 4] = *b"IGNT";
/// Serialization format version.
const VERSION: u8 = 1;
/// Serialized header size in bytes (magic, version, widths, reserved,
/// entry count, checksum, payload length).
const HEADER_LEN: usize = 20;

/// Why a metadata region could not be decoded.
///
/// The replay engine treats every variant the same way — drop the remainder
/// of the region and fall back to demand misses — but the distinction is
/// kept for diagnostics and fault-injection experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecError {
    /// The serialized image is too short, or its magic, version, delta
    /// widths, or payload length are structurally invalid.
    BadHeader,
    /// The stored checksum does not match the payload contents.
    ChecksumMismatch {
        /// Checksum carried in the header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// The header claims more records than the payload could possibly hold.
    ImplausibleEntryCount {
        /// Entry count carried in the header.
        claimed: u64,
        /// Upper bound given the payload size and record widths.
        max: u64,
    },
    /// The bit stream ended in the middle of a record.
    Truncated {
        /// Index of the record that could not be completed.
        entry: usize,
    },
    /// A record carries an undefined branch-kind code.
    BadKind {
        /// Index of the offending record.
        entry: usize,
        /// The undefined kind code.
        code: u8,
    },
    /// A delta-compressed record appeared with no previous target to
    /// expand its source delta against.
    BrokenChain {
        /// Index of the offending record.
        entry: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "structurally invalid metadata header"),
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "metadata checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            CodecError::ImplausibleEntryCount { claimed, max } => {
                write!(f, "header claims {claimed} records but payload holds at most {max}")
            }
            CodecError::Truncated { entry } => {
                write!(f, "metadata stream truncated inside record {entry}")
            }
            CodecError::BadKind { entry, code } => {
                write!(f, "record {entry} carries undefined branch-kind code {code}")
            }
            CodecError::BrokenChain { entry } => {
                write!(f, "compressed record {entry} has no previous target to delta from")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over the payload plus the header fields that govern decoding, so
/// corruption of either is caught by [`Metadata::validate`].
fn checksum(payload: &[u8], entries: u32, src_bits: u32, tgt_bits: u32) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |b: u8| {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    };
    for &b in payload {
        eat(b);
    }
    for b in entries.to_le_bytes() {
        eat(b);
    }
    eat(src_bits as u8);
    eat(tgt_bits as u8);
    h
}

/// Delta widths for the compressed record format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Signed bits for the previous-target → branch-PC delta.
    pub src_delta_bits: u32,
    /// Signed bits for the branch-PC → target delta.
    pub tgt_delta_bits: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig { src_delta_bits: 9, tgt_delta_bits: 21 }
    }
}

impl CodecConfig {
    /// Bits per compressed record (format + kind + deltas).
    pub const fn compressed_bits(&self) -> u32 {
        1 + KIND_BITS + self.src_delta_bits + self.tgt_delta_bits
    }

    /// Bits per full-address record.
    pub const fn full_bits(&self) -> u32 {
        1 + KIND_BITS + 2 * VA_BITS
    }
}

#[inline]
fn fits_signed(value: i64, bits: u32) -> bool {
    if bits == 0 || bits >= 64 {
        return bits != 0;
    }
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&value)
}

/// LSB-first bit writer.
#[derive(Debug, Clone, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    fn write(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        if bits == 0 {
            return;
        }
        let value = if bits == 64 { value } else { value & ((1u64 << bits) - 1) };
        // Batched: position the value at the current bit offset (a u128
        // holds 64 payload bits plus 7 bits of shift) and OR it in a byte
        // at a time, instead of one bit per iteration.
        let mut chunk = u128::from(value) << (self.bit_len % 8);
        let mut byte_idx = self.bit_len / 8;
        self.bit_len += bits as usize;
        self.bytes.resize(self.bit_len.div_ceil(8), 0);
        while chunk != 0 {
            self.bytes[byte_idx] |= chunk as u8;
            chunk >>= 8;
            byte_idx += 1;
        }
    }

    fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// LSB-first bit reader.
#[derive(Debug, Clone)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read(&mut self, bits: u32) -> Option<u64> {
        debug_assert!(bits <= 64);
        if self.pos + bits as usize > self.bytes.len() * 8 {
            return None;
        }
        if bits == 0 {
            return Some(0);
        }
        // Batched: gather the (at most 9) spanned bytes into a u128 and
        // shift the field out in one go, instead of one bit per iteration.
        let first = self.pos / 8;
        let last = (self.pos + bits as usize).div_ceil(8);
        let mut acc = 0u128;
        for (i, &b) in self.bytes[first..last].iter().enumerate() {
            acc |= u128::from(b) << (8 * i);
        }
        let v = (acc >> (self.pos % 8)) as u64;
        self.pos += bits as usize;
        Some(if bits == 64 { v } else { v & ((1u64 << bits) - 1) })
    }

    fn read_signed(&mut self, bits: u32) -> Option<i64> {
        let raw = self.read(bits)?;
        // Sign-extend.
        let shift = 64 - bits;
        Some(((raw << shift) as i64) >> shift)
    }
}

/// Encoded metadata for one function container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    bytes: Vec<u8>,
    entries: usize,
    cfg_src_bits: u32,
    cfg_tgt_bits: u32,
    /// Checksum claimed for the payload. Equals the recomputed checksum for
    /// metadata built by [`Encoder::finish`]; may disagree for metadata
    /// parsed from a (possibly corrupted) serialized image — that is what
    /// [`Metadata::validate`] detects.
    checksum: u32,
}

impl Metadata {
    /// Encoded size in bytes (what is streamed to/from memory).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Number of records.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The delta widths this metadata was encoded with.
    pub fn codec_config(&self) -> CodecConfig {
        CodecConfig { src_delta_bits: self.cfg_src_bits, tgt_delta_bits: self.cfg_tgt_bits }
    }

    /// The checksum claimed for the payload (see the field docs). Exposed so
    /// higher layers can fingerprint installed metadata without re-walking
    /// the payload.
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// Serializes to the in-memory region image the OS stores: a fixed
    /// header (magic, version, delta widths, entry count, checksum, payload
    /// length) followed by the bit-packed payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.bytes.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.cfg_src_bits as u8);
        out.push(self.cfg_tgt_bits as u8);
        out.push(0); // reserved
        out.extend_from_slice(&(self.entries as u32).to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Parses a serialized region image, performing the structural checks
    /// that do not require walking the payload (magic, version, widths,
    /// length, entry-count plausibility). Checksum verification is separate
    /// — see [`Metadata::validate`] — because replay may be configured to
    /// skip it.
    pub fn from_bytes(bytes: &[u8]) -> Result<Metadata, CodecError> {
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC || bytes[4] != VERSION {
            return Err(CodecError::BadHeader);
        }
        let src_bits = u32::from(bytes[5]);
        let tgt_bits = u32::from(bytes[6]);
        if !(1..=VA_BITS).contains(&src_bits) || !(1..=VA_BITS).contains(&tgt_bits) {
            return Err(CodecError::BadHeader);
        }
        let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let entries = word(8) as usize;
        let stored_checksum = word(12);
        let payload_len = word(16) as usize;
        if bytes.len() - HEADER_LEN != payload_len {
            return Err(CodecError::BadHeader);
        }
        let cfg = CodecConfig { src_delta_bits: src_bits, tgt_delta_bits: tgt_bits };
        let min_record_bits = cfg.compressed_bits().min(cfg.full_bits()) as u64;
        let max = payload_len as u64 * 8 / min_record_bits;
        if entries as u64 > max {
            return Err(CodecError::ImplausibleEntryCount { claimed: entries as u64, max });
        }
        Ok(Metadata {
            bytes: bytes[HEADER_LEN..].to_vec(),
            entries,
            cfg_src_bits: src_bits,
            cfg_tgt_bits: tgt_bits,
            checksum: stored_checksum,
        })
    }

    /// Verifies the payload against the claimed checksum.
    ///
    /// This is the cheap first line of defence replay runs before trusting
    /// a region: bit flips and truncation anywhere in the payload (or in
    /// the decode-governing header fields) surface here, before any record
    /// is expanded.
    pub fn validate(&self) -> Result<(), CodecError> {
        let computed =
            checksum(&self.bytes, self.entries as u32, self.cfg_src_bits, self.cfg_tgt_bits);
        if computed != self.checksum {
            return Err(CodecError::ChecksumMismatch { stored: self.checksum, computed });
        }
        Ok(())
    }

    /// Decodes all records.
    ///
    /// Mirrors the replay engine's sequential read of the stream. On
    /// corruption the iterator simply ends early; use
    /// [`Metadata::decode_checked`] to observe *why*.
    pub fn decode(&self) -> Decoder<'_> {
        Decoder(self.decode_checked())
    }

    /// Decodes records fallibly: yields `Ok` entries until the first
    /// corruption, then yields that error once and fuses.
    ///
    /// A corrupt stream can never produce more than [`Metadata::entries`]
    /// items, and never invents records past the first undecodable one —
    /// delta expansion means everything downstream of a bad record is
    /// untrustworthy.
    pub fn decode_checked(&self) -> CheckedDecoder<'_> {
        CheckedDecoder {
            reader: BitReader::new(&self.bytes),
            index: 0,
            remaining: self.entries,
            last_target: None,
            src_bits: self.cfg_src_bits,
            tgt_bits: self.cfg_tgt_bits,
            failed: false,
        }
    }
}

/// Streaming encoder for Ignite records.
///
/// # Example
///
/// ```
/// use ignite_core::codec::{CodecConfig, Encoder};
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::{BranchKind, BtbEntry};
///
/// let mut enc = Encoder::new(CodecConfig::default());
/// let entry = BtbEntry::new(Addr::new(0x1000), Addr::new(0x10c0), BranchKind::Call);
/// enc.push(&entry);
/// let metadata = enc.finish();
/// let decoded: Vec<_> = metadata.decode().collect();
/// assert_eq!(decoded, vec![entry]);
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    cfg: CodecConfig,
    writer: BitWriter,
    last_target: Option<Addr>,
    entries: usize,
    compressed: usize,
    full: usize,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new(cfg: CodecConfig) -> Self {
        Encoder {
            cfg,
            writer: BitWriter::default(),
            last_target: None,
            entries: 0,
            compressed: 0,
            full: 0,
        }
    }

    /// Appends one BTB-insertion record.
    pub fn push(&mut self, entry: &BtbEntry) {
        let compressible = match self.last_target {
            Some(last) => {
                let src = last.delta_to(entry.branch_pc);
                let tgt = entry.branch_pc.delta_to(entry.target);
                fits_signed(src, self.cfg.src_delta_bits)
                    && fits_signed(tgt, self.cfg.tgt_delta_bits)
            }
            None => false,
        };
        if compressible {
            let last = self.last_target.expect("checked above");
            self.writer.write(1, 1);
            self.writer.write(u64::from(entry.kind.code()), KIND_BITS);
            let src = last.delta_to(entry.branch_pc);
            let tgt = entry.branch_pc.delta_to(entry.target);
            self.writer.write(src as u64, self.cfg.src_delta_bits);
            self.writer.write(tgt as u64, self.cfg.tgt_delta_bits);
            self.compressed += 1;
        } else {
            self.writer.write(0, 1);
            self.writer.write(u64::from(entry.kind.code()), KIND_BITS);
            self.writer.write(entry.branch_pc.as_u64(), VA_BITS);
            self.writer.write(entry.target.as_u64(), VA_BITS);
            self.full += 1;
        }
        self.last_target = Some(entry.target);
        self.entries += 1;
    }

    /// Current encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.writer.byte_len()
    }

    /// Records encoded so far.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Records that used the compressed format.
    pub fn compressed_entries(&self) -> usize {
        self.compressed
    }

    /// Records that fell back to full addresses.
    pub fn full_entries(&self) -> usize {
        self.full
    }

    /// Finalizes into immutable metadata.
    pub fn finish(self) -> Metadata {
        let check = checksum(
            &self.writer.bytes,
            self.entries as u32,
            self.cfg.src_delta_bits,
            self.cfg.tgt_delta_bits,
        );
        Metadata {
            bytes: self.writer.bytes,
            entries: self.entries,
            cfg_src_bits: self.cfg.src_delta_bits,
            cfg_tgt_bits: self.cfg.tgt_delta_bits,
            checksum: check,
        }
    }
}

/// Fallible iterator over decoded records (see
/// [`Metadata::decode_checked`]).
#[derive(Debug, Clone)]
pub struct CheckedDecoder<'a> {
    reader: BitReader<'a>,
    index: usize,
    remaining: usize,
    last_target: Option<Addr>,
    src_bits: u32,
    tgt_bits: u32,
    failed: bool,
}

impl CheckedDecoder<'_> {
    fn fail(&mut self, err: CodecError) -> Option<Result<BtbEntry, CodecError>> {
        self.failed = true;
        Some(Err(err))
    }
}

impl Iterator for CheckedDecoder<'_> {
    type Item = Result<BtbEntry, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let Some(format) = self.reader.read(1) else {
            return self.fail(CodecError::Truncated { entry: self.index });
        };
        let Some(code) = self.reader.read(KIND_BITS) else {
            return self.fail(CodecError::Truncated { entry: self.index });
        };
        let Some(kind) = BranchKind::from_code(code as u8) else {
            return self.fail(CodecError::BadKind { entry: self.index, code: code as u8 });
        };
        let entry = if format == 1 {
            let (Some(src), Some(tgt)) =
                (self.reader.read_signed(self.src_bits), self.reader.read_signed(self.tgt_bits))
            else {
                return self.fail(CodecError::Truncated { entry: self.index });
            };
            let Some(last) = self.last_target else {
                return self.fail(CodecError::BrokenChain { entry: self.index });
            };
            let pc = last.offset(src);
            BtbEntry::new(pc, pc.offset(tgt), kind)
        } else {
            let (Some(pc), Some(target)) = (self.reader.read(VA_BITS), self.reader.read(VA_BITS))
            else {
                return self.fail(CodecError::Truncated { entry: self.index });
            };
            BtbEntry::new(Addr::new(pc), Addr::new(target), kind)
        };
        self.last_target = Some(entry.target);
        self.remaining -= 1;
        self.index += 1;
        Some(Ok(entry))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            (0, Some(0))
        } else {
            // An extra slot for the terminal error; `remaining` itself is an
            // upper bound on yielded entries.
            (0, Some(self.remaining + 1))
        }
    }
}

impl std::iter::FusedIterator for CheckedDecoder<'_> {}

/// Iterator over decoded records, stopping silently at the first
/// corruption.
#[derive(Debug, Clone)]
pub struct Decoder<'a>(CheckedDecoder<'a>);

impl Iterator for Decoder<'_> {
    type Item = BtbEntry;

    fn next(&mut self) -> Option<BtbEntry> {
        self.0.next()?.ok()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Exact for well-formed metadata (the common case); corruption only
        // ever shortens the stream.
        (self.0.remaining, Some(self.0.remaining))
    }
}

impl ExactSizeIterator for Decoder<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64, target: u64, kind: BranchKind) -> BtbEntry {
        BtbEntry::new(Addr::new(pc), Addr::new(target), kind)
    }

    fn roundtrip(cfg: CodecConfig, entries: &[BtbEntry]) -> Metadata {
        let mut enc = Encoder::new(cfg);
        for e in entries {
            enc.push(e);
        }
        let md = enc.finish();
        let decoded: Vec<_> = md.decode().collect();
        assert_eq!(decoded, entries, "roundtrip mismatch");
        md
    }

    #[test]
    fn single_entry_roundtrip() {
        roundtrip(CodecConfig::default(), &[entry(0x1000, 0x1100, BranchKind::Conditional)]);
    }

    #[test]
    fn chain_roundtrip_all_kinds() {
        let entries = vec![
            entry(0x1000, 0x1040, BranchKind::Conditional),
            entry(0x1050, 0x1200, BranchKind::Unconditional),
            entry(0x1210, 0x8000, BranchKind::Call),
            entry(0x8040, 0x1220, BranchKind::Return),
            entry(0x1230, 0x1400, BranchKind::Indirect),
        ];
        roundtrip(CodecConfig::default(), &entries);
    }

    #[test]
    fn local_chain_compresses() {
        // A chain of nearby branches: after the first (full) record, all
        // should use the compressed format.
        let entries: Vec<_> = (0..50u64)
            .map(|i| entry(0x1000 + i * 32, 0x1000 + i * 32 + 16, BranchKind::Conditional))
            .collect();
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        assert_eq!(enc.full_entries(), 1);
        assert_eq!(enc.compressed_entries(), 49);
        let bits_per_entry = enc.byte_len() * 8 / entries.len();
        assert!(bits_per_entry < 40, "{bits_per_entry} bits/entry");
        let md = enc.finish();
        let decoded: Vec<_> = md.decode().collect();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn far_jump_falls_back_to_full() {
        let entries = vec![
            entry(0x1000, 0x1040, BranchKind::Conditional),
            // Target 100 MiB away: exceeds any delta width.
            entry(0x1050, 0x640_0000, BranchKind::Call),
        ];
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        assert_eq!(enc.full_entries(), 2);
        let md = enc.finish();
        assert_eq!(md.decode().collect::<Vec<_>>(), entries);
    }

    #[test]
    fn negative_deltas_roundtrip() {
        // Backward branch: target below PC; next branch PC below previous
        // target.
        let entries = vec![
            entry(0x2000, 0x2100, BranchKind::Conditional),
            entry(0x20f0, 0x2080, BranchKind::Conditional), // src -16, tgt -112
        ];
        roundtrip(CodecConfig::default(), &entries);
    }

    #[test]
    fn paper_width_variants_roundtrip() {
        let entries: Vec<_> = (0..20u64)
            .map(|i| entry(0x1000 + i * 24, 0x1000 + i * 24 + 60, BranchKind::Conditional))
            .collect();
        // §4.1 variant: 7-bit source, 21-bit target.
        roundtrip(CodecConfig { src_delta_bits: 7, tgt_delta_bits: 21 }, &entries);
        // §5.3 variant: 21-bit source, 7-bit target.
        roundtrip(CodecConfig { src_delta_bits: 21, tgt_delta_bits: 7 }, &entries);
    }

    #[test]
    fn compressed_record_size_matches_config() {
        let cfg = CodecConfig::default();
        assert_eq!(cfg.compressed_bits(), 1 + 3 + 9 + 21);
        assert_eq!(cfg.full_bits(), 1 + 3 + 96);
    }

    #[test]
    fn empty_metadata() {
        let md = Encoder::new(CodecConfig::default()).finish();
        assert!(md.is_empty());
        assert_eq!(md.decode().count(), 0);
    }

    #[test]
    fn decoder_len_matches_entries() {
        let md = roundtrip(
            CodecConfig::default(),
            &[
                entry(0x1000, 0x1040, BranchKind::Conditional),
                entry(0x1050, 0x1080, BranchKind::Conditional),
            ],
        );
        assert_eq!(md.decode().len(), 2);
    }

    #[test]
    fn truncated_bytes_yield_none() {
        let mut enc = Encoder::new(CodecConfig::default());
        enc.push(&entry(0x1000, 0x1040, BranchKind::Conditional));
        enc.push(&entry(0x1050, 0x1080, BranchKind::Conditional));
        let mut md = enc.finish();
        md.bytes.truncate(md.bytes.len() - 1);
        let decoded: Vec<_> = md.decode().collect();
        assert!(decoded.len() < 2, "truncated stream must not invent records");
    }

    #[test]
    fn fits_signed_boundaries() {
        assert!(fits_signed(63, 7));
        assert!(!fits_signed(64, 7));
        assert!(fits_signed(-64, 7));
        assert!(!fits_signed(-65, 7));
    }

    #[test]
    fn fig7b_example_deltas() {
        // The paper's Fig. 7b: branch at 0x100F with target 0x10CF gives a
        // branch-PC delta of 0x0F (from previous target 0x1000) and a
        // target delta of 0xC0.
        let prev = entry(0x0800, 0x1000, BranchKind::Call);
        let this = entry(0x100F, 0x10CF, BranchKind::Conditional);
        assert_eq!(Addr::new(0x1000).delta_to(this.branch_pc), 0x0F);
        assert_eq!(this.branch_pc.delta_to(this.target), 0xC0);
        roundtrip(CodecConfig::default(), &[prev, this]);
    }
}
