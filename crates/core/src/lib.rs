#![warn(missing_docs)]
//! Ignite: comprehensive front-end microarchitectural state restoration.
//!
//! This crate is the paper's primary contribution (Schall, Sandberg, Grot,
//! *Warming Up a Cold Front-End with Ignite*, MICRO'23): a record-and-replay
//! mechanism that captures a serverless function's control-flow working set
//! as delta-compressed in-memory metadata and, on the function's next
//! (lukewarm) invocation, restores
//!
//! * the instruction working set into the **L2**,
//! * the branch working set into the **BTB**, and
//! * taken-branch direction hints into the **bimodal predictor**,
//!
//! from a single unified stream. The key insight: the BTB working set — the
//! set of taken branches — is a compact, non-redundant representation of the
//! program's control-flow graph, and the mere existence of a BTB entry for a
//! conditional branch implies the branch was taken, which seeds the bimodal
//! predictor (§4).
//!
//! Modules: [`codec`] (metadata format), [`record`], [`replay`], [`os`]
//! (per-container regions and control registers). [`Ignite`] ties them into
//! the per-invocation lifecycle the simulation engine drives.
//!
//! # Example
//!
//! ```
//! use ignite_core::{Ignite, IgniteConfig};
//! use ignite_uarch::addr::Addr;
//! use ignite_uarch::btb::{BranchKind, Btb, BtbEntry};
//! use ignite_uarch::cbp::Cbp;
//! use ignite_uarch::config::UarchConfig;
//! use ignite_uarch::hierarchy::Hierarchy;
//! use ignite_uarch::tlb::Itlb;
//!
//! let cfg = UarchConfig::tiny_for_tests();
//! let (mut btb, mut cbp) = (Btb::new(&cfg.btb), Cbp::new(&cfg.cbp));
//! let (mut h, mut tlb) = (Hierarchy::new(&cfg.hierarchy), Itlb::new(&cfg.itlb));
//! let mut ignite = Ignite::new(IgniteConfig::default());
//!
//! // Invocation 1: the BTB allocation is recorded.
//! ignite.begin_invocation(7);
//! btb.insert(BtbEntry::new(Addr::new(0x100), Addr::new(0x200), BranchKind::Call), false);
//! ignite.observe_btb_insertions(&mut btb);
//! ignite.end_invocation(7);
//!
//! // Lukewarm flush...
//! btb.flush();
//!
//! // Invocation 2: replay restores the BTB before the branch executes.
//! ignite.begin_invocation(7);
//! ignite.step(0, &mut btb, &mut cbp, &mut tlb, &mut h);
//! assert!(btb.probe(Addr::new(0x100)).is_some());
//! ```

pub mod codec;
pub mod fault;
pub mod os;
pub mod record;
pub mod replay;
pub mod store;

use ignite_uarch::btb::Btb;
use ignite_uarch::cbp::Cbp;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::tlb::Itlb;
use ignite_uarch::Cycle;

pub use codec::{CodecConfig, CodecError};
pub use fault::FaultPlan;
pub use replay::{ReplayConfig, ReplayStats, ReplayStep};
pub use store::{EvictionPolicy, MetadataStore, StoreConfig, StoreStats};

use record::Recorder;
use replay::Replayer;

/// Top-level Ignite configuration (§5.3 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IgniteConfig {
    /// Metadata delta compression widths.
    pub codec: CodecConfig,
    /// Per-container metadata region size (record budget); paper: 120 KiB.
    pub metadata_budget_bytes: usize,
    /// Replay pacing, throttling and restoration policy.
    pub replay: ReplayConfig,
    /// Fault injection applied to stored regions between invocations
    /// (inert by default; used by the robustness experiments).
    pub faults: FaultPlan,
}

impl Default for IgniteConfig {
    fn default() -> Self {
        IgniteConfig {
            codec: CodecConfig::default(),
            metadata_budget_bytes: 120 * 1024,
            replay: ReplayConfig::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// Per-invocation summary returned by [`Ignite::end_invocation`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgniteInvocationStats {
    /// BTB allocations recorded.
    pub entries_recorded: u64,
    /// Record metadata bytes streamed to memory.
    pub record_bytes: u64,
    /// Replay statistics.
    pub replay: ReplayStats,
    /// Replay records that existed but were not consumed before the
    /// invocation ended.
    pub replay_unfinished: u64,
}

/// The Ignite mechanism: record + replay engines and the OS interface.
#[derive(Debug, Clone)]
pub struct Ignite {
    cfg: IgniteConfig,
    os: os::IgniteOs,
    recorder: Option<Recorder>,
    replayer: Option<Replayer>,
    active: Option<u64>,
    /// Degradation events observed outside the replayer proper (unreadable
    /// regions, stale restorations noticed at commit); folded into the
    /// replay stats at `end_invocation`.
    fault_stats: ReplayStats,
}

impl Ignite {
    /// Creates an Ignite instance with no recorded metadata.
    pub fn new(cfg: IgniteConfig) -> Self {
        let mut os = os::IgniteOs::new(cfg.metadata_budget_bytes);
        os.set_faults(cfg.faults);
        Ignite {
            cfg,
            os,
            recorder: None,
            replayer: None,
            active: None,
            fault_stats: ReplayStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IgniteConfig {
        &self.cfg
    }

    /// The OS interface (control registers, stored regions).
    pub fn os_mut(&mut self) -> &mut os::IgniteOs {
        &mut self.os
    }

    /// The OS interface, immutably.
    pub fn os(&self) -> &os::IgniteOs {
        &self.os
    }

    /// Arms record/replay for an invocation of `container` (§4.3: the OS
    /// sets the control bits as the function is scheduled).
    pub fn begin_invocation(&mut self, container: u64) {
        let plan = self.os.function_started(container);
        self.recorder =
            plan.record.then(|| Recorder::new(self.cfg.codec, self.cfg.metadata_budget_bytes));
        self.replayer = plan.replay_metadata.as_ref().map(|md| Replayer::new(md, self.cfg.replay));
        self.fault_stats = ReplayStats::default();
        if let Some((_, claimed)) = plan.replay_error {
            // The region existed but was destroyed before it could be read;
            // account its records as dropped so degradation is observable.
            self.fault_stats.decode_errors += 1;
            self.fault_stats.entries_dropped += claimed as u64;
        }
        self.active = Some(container);
    }

    /// Installs a metadata region owned by an external store (see
    /// [`store::MetadataStore`]) so the next [`Ignite::begin_invocation`]
    /// of `container` replays it. Convenience forwarding to
    /// [`os::IgniteOs::install`].
    pub fn install_metadata(&mut self, container: u64, md: codec::Metadata) {
        self.os.install(container, md);
    }

    /// Takes the (double-buffer merged) region back out after
    /// [`Ignite::end_invocation`]. Convenience forwarding to
    /// [`os::IgniteOs::take`].
    pub fn take_metadata(&mut self, container: u64) -> Option<codec::Metadata> {
        self.os.take(container)
    }

    /// Notes that a restored BTB entry resteered at commit (its recorded
    /// target was stale). Called by the simulation engine.
    pub fn note_stale_restored(&mut self) {
        self.fault_stats.stale_restored += 1;
    }

    /// Whether replay still has records to restore.
    pub fn replay_pending(&self) -> bool {
        self.replayer.as_ref().is_some_and(|r| !r.is_done())
    }

    /// Total records in the armed replay stream (0 without a replayer).
    /// Observability accessor: lets the engine label replay-begin events.
    pub fn replay_total_entries(&self) -> u64 {
        self.replayer.as_ref().map_or(0, |r| r.total_entries() as u64)
    }

    /// Records the armed replayer has restored so far (0 without one).
    pub fn replay_restored(&self) -> u64 {
        self.replayer.as_ref().map_or(0, |r| r.stats().entries_restored)
    }

    /// Whether a recorder is armed for the current invocation.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Runs one cycle of the replay engine.
    pub fn step(
        &mut self,
        now: Cycle,
        btb: &mut Btb,
        cbp: &mut Cbp,
        itlb: &mut Itlb,
        hierarchy: &mut Hierarchy,
    ) -> ReplayStep {
        match &mut self.replayer {
            Some(r) if !r.is_done() => r.step(now, btb, cbp, itlb, hierarchy),
            _ => ReplayStep::default(),
        }
    }

    /// Drains the BTB's insertion log into the recorder (call every cycle,
    /// or at least once per committed block).
    pub fn observe_btb_insertions(&mut self, btb: &mut Btb) {
        let events = btb.drain_insertions();
        if let Some(rec) = &mut self.recorder {
            for entry in &events {
                rec.observe(entry);
            }
        }
    }

    /// Record metadata bytes streamed so far this invocation.
    pub fn record_bytes(&self) -> u64 {
        self.recorder.as_ref().map_or(0, Recorder::streamed_bytes)
    }

    /// Finishes the invocation: persists the recording and reports stats.
    ///
    /// When replay was active (double-buffered operation, §4.3), the new
    /// recording holds only the branches replay did not cover — it is
    /// *merged* into the retained region. Record-only invocations replace
    /// the region with the complete fresh trace.
    pub fn end_invocation(&mut self, container: u64) -> IgniteInvocationStats {
        debug_assert_eq!(self.active, Some(container), "mismatched begin/end");
        let mut stats = IgniteInvocationStats::default();
        let replayed = self.replayer.take();
        if let Some(replayer) = &replayed {
            stats.replay = *replayer.stats();
            // Unfinished = still pending at the cursor. Deriving it from
            // `total - restored` would re-count watchdog-abandoned records,
            // which are already in `entries_dropped`.
            stats.replay_unfinished = replayer.pending_entries() as u64;
        }
        stats.replay.merge(&std::mem::take(&mut self.fault_stats));
        if let Some(recorder) = self.recorder.take() {
            stats.entries_recorded = recorder.entries() as u64;
            stats.record_bytes = recorder.streamed_bytes();
            if replayed.is_some() {
                self.os.function_finished_merge(container, recorder.finish(), self.cfg.codec);
            } else {
                self.os.function_finished(container, Some(recorder.finish()));
            }
        }
        self.active = None;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_uarch::addr::Addr;
    use ignite_uarch::btb::{BranchKind, BtbEntry};
    use ignite_uarch::config::UarchConfig;

    struct Machine {
        btb: Btb,
        cbp: Cbp,
        itlb: Itlb,
        hierarchy: Hierarchy,
    }

    fn machine() -> Machine {
        let cfg = UarchConfig::tiny_for_tests();
        Machine {
            btb: Btb::new(&cfg.btb),
            cbp: Cbp::new(&cfg.cbp),
            itlb: Itlb::new(&cfg.itlb),
            hierarchy: Hierarchy::new(&cfg.hierarchy),
        }
    }

    fn entry(i: u64) -> BtbEntry {
        BtbEntry::new(
            Addr::new(0x1000 + i * 32),
            Addr::new(0x1000 + i * 32 + 8),
            BranchKind::Conditional,
        )
    }

    #[test]
    fn full_record_flush_replay_cycle() {
        let mut m = machine();
        let mut ignite = Ignite::new(IgniteConfig::default());

        ignite.begin_invocation(1);
        for i in 0..20 {
            m.btb.insert(entry(i), false);
        }
        ignite.observe_btb_insertions(&mut m.btb);
        let s1 = ignite.end_invocation(1);
        assert_eq!(s1.entries_recorded, 20);
        assert!(s1.record_bytes > 0);

        // Lukewarm flush.
        m.btb.flush();

        ignite.begin_invocation(1);
        assert!(ignite.replay_pending());
        let mut now = 0;
        while ignite.replay_pending() {
            ignite.step(now, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
            now += 1;
        }
        for i in 0..20 {
            assert!(m.btb.probe(entry(i).branch_pc).is_some(), "entry {i} restored");
        }
        let s2 = ignite.end_invocation(1);
        assert_eq!(s2.replay.entries_restored, 20);
        assert_eq!(s2.replay_unfinished, 0);
    }

    #[test]
    fn first_invocation_has_no_replay() {
        let mut ignite = Ignite::new(IgniteConfig::default());
        ignite.begin_invocation(9);
        assert!(!ignite.replay_pending());
    }

    #[test]
    fn replay_insertions_are_not_rerecorded() {
        let mut m = machine();
        let mut ignite = Ignite::new(IgniteConfig::default());
        ignite.begin_invocation(1);
        m.btb.insert(entry(0), false);
        ignite.observe_btb_insertions(&mut m.btb);
        ignite.end_invocation(1);
        m.btb.flush();

        // Second invocation: replay restores entry 0; no new demand inserts.
        ignite.begin_invocation(1);
        while ignite.replay_pending() {
            ignite.step(0, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
        }
        ignite.observe_btb_insertions(&mut m.btb);
        let s = ignite.end_invocation(1);
        assert_eq!(s.entries_recorded, 0, "restored entries must not be re-recorded");
    }

    #[test]
    fn unfinished_replay_counted() {
        let mut m = machine();
        let mut ignite = Ignite::new(IgniteConfig::default());
        ignite.begin_invocation(1);
        for i in 0..50 {
            m.btb.insert(entry(i), false);
        }
        ignite.observe_btb_insertions(&mut m.btb);
        ignite.end_invocation(1);
        m.btb.flush();

        ignite.begin_invocation(1);
        ignite.step(0, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy); // one step only
        let s = ignite.end_invocation(1);
        assert!(s.replay_unfinished > 0);
    }

    #[test]
    fn watchdog_abandoned_entries_not_double_counted() {
        // Regression: `replay_unfinished` was computed as
        // `total_entries - entries_restored`, which re-counted the records
        // a watchdog abandon had already booked in `entries_dropped` —
        // the aggregate report charged each abandoned invocation twice.
        let mut m = machine();
        let cfg = IgniteConfig {
            replay: ReplayConfig {
                throttle_threshold: 0,
                watchdog_stall_steps: 8,
                prefetch_instructions: false,
                ..ReplayConfig::default()
            },
            ..IgniteConfig::default()
        };
        let mut ignite = Ignite::new(cfg);
        ignite.begin_invocation(1);
        for i in 0..50 {
            m.btb.insert(entry(i), false);
        }
        ignite.observe_btb_insertions(&mut m.btb);
        ignite.end_invocation(1);
        m.btb.flush();

        // Nothing consumes the restored entries, so replay throttles
        // forever and the watchdog abandons it.
        ignite.begin_invocation(1);
        let mut now = 0;
        while ignite.replay_pending() && now < 1_000 {
            ignite.step(now, &mut m.btb, &mut m.cbp, &mut m.itlb, &mut m.hierarchy);
            now += 1;
        }
        let s = ignite.end_invocation(1);
        assert_eq!(s.replay.watchdog_abandons, 1, "watchdog must have fired");
        assert!(s.replay.entries_dropped > 0);
        assert_eq!(
            s.replay_unfinished, 0,
            "watchdog-dropped records must not also count as unfinished"
        );
        assert_eq!(s.replay.entries_restored + s.replay.entries_dropped, 50);
    }

    #[test]
    fn metadata_scales_with_containers_not_chip() {
        // Thousands of containers store metadata in (modelled) DRAM; the
        // mechanism has no per-container on-chip state.
        let mut m = machine();
        let mut ignite = Ignite::new(IgniteConfig::default());
        for c in 0..1000u64 {
            ignite.begin_invocation(c);
            m.btb.insert(entry(c % 8), false);
            ignite.observe_btb_insertions(&mut m.btb);
            ignite.end_invocation(c);
            m.btb.flush();
        }
        assert_eq!(ignite.os().containers(), 1000);
    }
}
