//! Ignite record logic (§4.1).
//!
//! The recorder monitors BTB *allocation* events (taken branches committed
//! while absent from the BTB) and appends each to the metadata stream, up to
//! a per-container metadata budget. Because the front-end starts each
//! lukewarm invocation with a cold BTB, the resulting trace lists unique
//! branches in first-execution order — the order the next invocation is
//! expected to need them.

use ignite_uarch::btb::BtbEntry;

use crate::codec::{CodecConfig, Encoder, Metadata};

/// A recording session for one invocation of one container.
///
/// # Example
///
/// ```
/// use ignite_core::codec::CodecConfig;
/// use ignite_core::record::Recorder;
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::{BranchKind, BtbEntry};
///
/// let mut rec = Recorder::new(CodecConfig::default(), 1024);
/// rec.observe(&BtbEntry::new(Addr::new(0x100), Addr::new(0x200), BranchKind::Call));
/// let md = rec.finish();
/// assert_eq!(md.entries(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    encoder: Encoder,
    budget_bytes: usize,
    /// Bytes streamed to memory so far (for bandwidth accounting, the
    /// metadata is written through to DRAM as it is produced).
    streamed_bytes: u64,
    dropped: u64,
    stopped: bool,
}

impl Recorder {
    /// Creates a recorder with the given metadata budget (paper: 120 KiB).
    pub fn new(codec: CodecConfig, budget_bytes: usize) -> Self {
        Recorder {
            encoder: Encoder::new(codec),
            budget_bytes,
            streamed_bytes: 0,
            dropped: 0,
            stopped: false,
        }
    }

    /// Observes one BTB allocation.
    ///
    /// Events beyond the metadata budget are dropped (the paper sizes the
    /// budget so this does not happen for its workloads).
    pub fn observe(&mut self, entry: &BtbEntry) {
        if self.stopped {
            self.dropped += 1;
            return;
        }
        let before = self.encoder.byte_len();
        self.encoder.push(entry);
        if self.encoder.byte_len() > self.budget_bytes {
            // The entry that crossed the budget is kept (hardware would stop
            // at a region boundary); further entries are dropped.
            self.stopped = true;
        }
        self.streamed_bytes += (self.encoder.byte_len() - before) as u64;
    }

    /// Entries recorded.
    pub fn entries(&self) -> usize {
        self.encoder.entries()
    }

    /// Entries dropped after the budget filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Metadata bytes streamed to memory so far.
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes
    }

    /// Whether the budget has been reached.
    pub fn is_full(&self) -> bool {
        self.stopped
    }

    /// Finalizes the recording into metadata for the OS to store.
    pub fn finish(self) -> Metadata {
        self.encoder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_uarch::addr::Addr;
    use ignite_uarch::btb::BranchKind;

    fn entry(i: u64) -> BtbEntry {
        BtbEntry::new(
            Addr::new(0x1000 + i * 32),
            Addr::new(0x1000 + i * 32 + 16),
            BranchKind::Conditional,
        )
    }

    #[test]
    fn records_in_order() {
        let mut r = Recorder::new(CodecConfig::default(), 1 << 20);
        for i in 0..10 {
            r.observe(&entry(i));
        }
        let md = r.finish();
        let decoded: Vec<_> = md.decode().collect();
        assert_eq!(decoded.len(), 10);
        assert_eq!(decoded[3], entry(3));
    }

    #[test]
    fn budget_stops_recording() {
        let mut r = Recorder::new(CodecConfig::default(), 16);
        for i in 0..100 {
            r.observe(&entry(i));
        }
        assert!(r.is_full());
        assert!(r.dropped() > 0);
        let recorded = r.entries();
        assert!(recorded < 100);
        assert!(recorded >= 2, "budget admits a few compressed entries");
    }

    #[test]
    fn streamed_bytes_grow_monotonically() {
        let mut r = Recorder::new(CodecConfig::default(), 1 << 20);
        let mut last = 0;
        for i in 0..20 {
            r.observe(&entry(i));
            assert!(r.streamed_bytes() >= last);
            last = r.streamed_bytes();
        }
        assert!(last > 0);
    }

    #[test]
    fn empty_recorder_finishes_empty() {
        let md = Recorder::new(CodecConfig::default(), 1024).finish();
        assert!(md.is_empty());
    }
}
