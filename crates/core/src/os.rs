//! Operating-system interface (§4.3).
//!
//! The OS allocates a contiguous metadata region per function container and
//! programs Ignite's record/replay engines through base/size/control
//! registers. This module models that interface: per-container metadata
//! storage, record/replay enable bits, and optional double-buffering
//! (record and replay simultaneously, letting the metadata track behaviour
//! that evolves between invocations).

use std::collections::HashMap;

use crate::codec::{CodecError, Metadata};
use crate::fault::FaultPlan;

/// Control-register state for one Ignite engine pair (record + replay have
/// independent register sets; §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlRegisters {
    /// Recording enabled.
    pub record: bool,
    /// Replay enabled.
    pub replay: bool,
}

impl Default for ControlRegisters {
    fn default() -> Self {
        // Double-buffered always-on operation is the paper's worst-case
        // bandwidth configuration (§6.3) and keeps metadata fresh.
        ControlRegisters { record: true, replay: true }
    }
}

/// What the OS arms when a function is scheduled onto a core.
#[derive(Debug, Clone)]
pub struct InvocationPlan {
    /// Metadata from the previous invocation, to be replayed (absent on the
    /// container's first invocation or when replay is disabled).
    pub replay_metadata: Option<Metadata>,
    /// Whether recording should run during this invocation.
    pub record: bool,
    /// Set when a stored region existed but injected faults destroyed its
    /// structure before it could be read: the error, and how many records
    /// the region held before corruption.
    pub replay_error: Option<(CodecError, usize)>,
}

/// The modelled host OS managing Ignite metadata regions.
///
/// # Example
///
/// ```
/// use ignite_core::os::IgniteOs;
///
/// let mut os = IgniteOs::new(120 * 1024);
/// let plan = os.function_started(7);
/// assert!(plan.replay_metadata.is_none(), "first invocation has nothing to replay");
/// assert!(plan.record);
/// ```
#[derive(Debug, Clone)]
pub struct IgniteOs {
    regions: HashMap<u64, Metadata>,
    control: ControlRegisters,
    region_bytes: usize,
    faults: FaultPlan,
    /// Completed read-backs per container, indexing fault streams so each
    /// invocation draws independent (but reproducible) faults.
    read_counts: HashMap<u64, u64>,
}

impl IgniteOs {
    /// Creates an OS managing metadata regions of `region_bytes` each
    /// (paper: 120 KiB).
    pub fn new(region_bytes: usize) -> Self {
        IgniteOs {
            regions: HashMap::new(),
            control: ControlRegisters::default(),
            region_bytes,
            faults: FaultPlan::none(),
            read_counts: HashMap::new(),
        }
    }

    /// Installs a fault plan applied to every region read-back.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The active fault plan.
    pub fn faults(&self) -> FaultPlan {
        self.faults
    }

    /// Metadata region size (the record budget).
    pub fn region_bytes(&self) -> usize {
        self.region_bytes
    }

    /// Control registers.
    pub fn control(&self) -> ControlRegisters {
        self.control
    }

    /// Sets the control registers (e.g. replay-only, record-only).
    pub fn set_control(&mut self, control: ControlRegisters) {
        self.control = control;
    }

    /// Called when the scheduler places `container` on a core: returns the
    /// invocation plan per the control registers (§4.3), applying the fault
    /// plan (if any) to the stored region as it is read back.
    pub fn function_started(&mut self, container: u64) -> InvocationPlan {
        let mut plan = InvocationPlan {
            replay_metadata: None,
            record: self.control.record,
            replay_error: None,
        };
        if !self.control.replay {
            return plan;
        }
        let Some(stored) = self.regions.get(&container) else {
            return plan;
        };
        if !self.faults.is_active() {
            plan.replay_metadata = Some(stored.clone());
            return plan;
        }
        let invocation = {
            let c = self.read_counts.entry(container).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        match self.faults.apply(stored, container, invocation) {
            Ok(md) => plan.replay_metadata = md,
            Err(e) => plan.replay_error = Some((e, stored.entries())),
        }
        plan
    }

    /// Called when the invocation finishes with freshly recorded metadata:
    /// the region is swapped in for the next invocation (double buffering).
    pub fn function_finished(&mut self, container: u64, recorded: Option<Metadata>) {
        if let Some(md) = recorded {
            if !md.is_empty() {
                self.regions.insert(container, md);
            }
        }
    }

    /// Like [`IgniteOs::function_finished`], but *merges* the new recording
    /// into the retained region instead of replacing it.
    ///
    /// Used for double-buffered operation (§4.3): when replay was active,
    /// restored branches never re-allocate in the BTB, so the new recording
    /// holds only the branches that *diverged* this invocation. Appending
    /// them keeps the established working set while reacting to behaviour
    /// changes. The merged region is re-encoded and truncated at the region
    /// budget.
    pub fn function_finished_merge(
        &mut self,
        container: u64,
        recorded: Metadata,
        codec: crate::codec::CodecConfig,
    ) {
        if recorded.is_empty() {
            return;
        }
        let merged = match self.regions.get(&container) {
            None => recorded,
            Some(old) => {
                // De-duplicate by branch PC (newest record wins) so repeated
                // divergence does not grow the region without bound, then
                // re-encode in the original reuse order.
                let mut latest: std::collections::HashMap<u64, ignite_uarch::btb::BtbEntry> =
                    std::collections::HashMap::new();
                for e in old.decode().chain(recorded.decode()) {
                    latest.insert(e.branch_pc.as_u64(), e);
                }
                let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
                let mut enc = crate::codec::Encoder::new(codec);
                for e in old.decode().chain(recorded.decode()) {
                    if !seen.insert(e.branch_pc.as_u64()) {
                        continue;
                    }
                    let entry = latest[&e.branch_pc.as_u64()];
                    enc.push(&entry);
                    if enc.byte_len() > self.region_bytes {
                        break;
                    }
                }
                enc.finish()
            }
        };
        self.regions.insert(container, merged);
    }

    /// Installs an externally stored metadata region for `container`,
    /// replacing whatever this OS held. Cluster-level metadata stores own
    /// regions across invocations and hand them to a per-core OS instance
    /// just before dispatch; empty regions are ignored.
    pub fn install(&mut self, container: u64, md: Metadata) {
        if !md.is_empty() {
            self.regions.insert(container, md);
        }
    }

    /// Removes and returns the stored region for `container` (the inverse
    /// of [`IgniteOs::install`]: the caller takes ownership back after the
    /// invocation finished and the region was double-buffer merged).
    pub fn take(&mut self, container: u64) -> Option<Metadata> {
        self.regions.remove(&container)
    }

    /// Number of containers with stored metadata.
    pub fn containers(&self) -> usize {
        self.regions.len()
    }

    /// Stored metadata size for a container, in bytes.
    pub fn metadata_bytes(&self, container: u64) -> Option<usize> {
        self.regions.get(&container).map(Metadata::byte_len)
    }

    /// The stored metadata region for a container, if any — the read path
    /// experiments use to inspect what recording produced.
    pub fn metadata(&self, container: u64) -> Option<&Metadata> {
        self.regions.get(&container)
    }

    /// Frees a container's metadata region (function instance shut down).
    pub fn release(&mut self, container: u64) {
        self.regions.remove(&container);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecConfig, Encoder};
    use ignite_uarch::addr::Addr;
    use ignite_uarch::btb::{BranchKind, BtbEntry};

    fn sample_metadata() -> Metadata {
        let mut enc = Encoder::new(CodecConfig::default());
        enc.push(&BtbEntry::new(Addr::new(0x100), Addr::new(0x200), BranchKind::Call));
        enc.finish()
    }

    #[test]
    fn record_replay_cycle() {
        let mut os = IgniteOs::new(120 * 1024);
        let plan = os.function_started(1);
        assert!(plan.replay_metadata.is_none());
        os.function_finished(1, Some(sample_metadata()));
        let plan = os.function_started(1);
        assert_eq!(plan.replay_metadata.unwrap().entries(), 1);
    }

    #[test]
    fn replay_disable_bit() {
        let mut os = IgniteOs::new(120 * 1024);
        os.function_finished(1, Some(sample_metadata()));
        os.set_control(ControlRegisters { record: true, replay: false });
        let plan = os.function_started(1);
        assert!(plan.replay_metadata.is_none());
        assert!(plan.record);
    }

    #[test]
    fn record_disable_bit() {
        let mut os = IgniteOs::new(120 * 1024);
        os.set_control(ControlRegisters { record: false, replay: true });
        assert!(!os.function_started(1).record);
    }

    #[test]
    fn containers_are_independent() {
        let mut os = IgniteOs::new(120 * 1024);
        os.function_finished(1, Some(sample_metadata()));
        assert!(os.function_started(2).replay_metadata.is_none());
        assert_eq!(os.containers(), 1);
    }

    #[test]
    fn empty_metadata_not_stored() {
        let mut os = IgniteOs::new(120 * 1024);
        os.function_finished(1, Some(Encoder::new(CodecConfig::default()).finish()));
        assert_eq!(os.containers(), 0);
    }

    #[test]
    fn release_frees_region() {
        let mut os = IgniteOs::new(120 * 1024);
        os.function_finished(1, Some(sample_metadata()));
        assert!(os.metadata_bytes(1).is_some());
        os.release(1);
        assert!(os.metadata_bytes(1).is_none());
    }

    #[test]
    fn metadata_accessor_exposes_stored_region() {
        let mut os = IgniteOs::new(120 * 1024);
        assert!(os.metadata(1).is_none());
        os.function_finished(1, Some(sample_metadata()));
        assert_eq!(os.metadata(1).unwrap().entries(), 1);
    }

    #[test]
    fn certain_loss_faults_suppress_replay_metadata() {
        let mut os = IgniteOs::new(120 * 1024);
        os.set_faults(FaultPlan { loss_ppm: crate::fault::PPM_SCALE, ..FaultPlan::none() });
        os.function_finished(1, Some(sample_metadata()));
        let plan = os.function_started(1);
        assert!(plan.replay_metadata.is_none());
        assert!(plan.replay_error.is_none(), "loss is silent, not an error");
        // The stored region itself is untouched.
        assert_eq!(os.metadata(1).unwrap().entries(), 1);
    }

    #[test]
    fn structural_corruption_reports_replay_error() {
        let mut os = IgniteOs::new(120 * 1024);
        os.set_faults(FaultPlan { bit_flip_ppm: crate::fault::PPM_SCALE, ..FaultPlan::none() });
        os.function_finished(1, Some(sample_metadata()));
        let plan = os.function_started(1);
        assert!(plan.replay_metadata.is_none());
        let (_, entries) = plan.replay_error.expect("total corruption must surface");
        assert_eq!(entries, 1);
    }
}
