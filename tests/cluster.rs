//! Cluster-layer integration gates: golden report fingerprint, cross-
//! process determinism, capacity-sweep monotonicity, and trace replay
//! equivalence.
//!
//! The golden snapshot is the full `ignite-cluster-v1` JSON report of a
//! fixed small configuration, byte-compared against
//! `tests/golden/cluster.json`. To update after an intentional semantic
//! change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test cluster
//! ```

use std::path::PathBuf;

use ignite_cluster::{sweep_capacities, ClusterConfig, ClusterReport, ClusterSim};

/// The pinned golden configuration: 4 cores, the full 20-function suite,
/// Zipf(1.0) Poisson arrivals, a bounded LRU store. Small enough for CI,
/// long enough that recurrences hit the store and eviction engages.
fn golden_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/cluster.json")
}

fn golden_report() -> String {
    let cfg = golden_cfg();
    let outcome = ClusterSim::new(cfg.clone()).run();
    ClusterReport::new(cfg, outcome).to_json()
}

#[test]
fn golden_cluster_report_matches() {
    let current = golden_report();
    ClusterReport::validate(&current).expect("golden report must self-validate");
    let path = golden_path();
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test cluster",
            path.display()
        )
    });
    if committed != current {
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "cluster golden mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nCluster semantics changed. If intentional, re-bless \
                     with IGNITE_BLESS=1 cargo test -p ignite-harness --test cluster",
                    i + 1
                );
            }
        }
        panic!(
            "cluster golden length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}

/// Cross-process determinism: a fresh process (fresh ASLR, allocator
/// state, hash seeds) reproduces the same report bytes. The child re-runs
/// this test binary with `IGNITE_CLUSTER_CHILD=1`, which makes
/// [`cluster_child_emits_report`] print the golden-config report; two
/// spawns must print identical output.
#[test]
fn cluster_report_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["cluster_child_emits_report", "--exact", "--nocapture"])
            .env("IGNITE_CLUSTER_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let report: Vec<&str> =
            stdout.lines().filter(|l| l.starts_with("IGNITE_CLUSTER ")).collect();
        assert!(!report.is_empty(), "child printed no report lines:\n{stdout}");
        report.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different cluster reports");
}

/// Helper for [`cluster_report_identical_across_processes`]: prints the
/// golden-config report (one tagged line per JSON line) when spawned with
/// `IGNITE_CLUSTER_CHILD=1`, does nothing in a normal test run.
#[test]
fn cluster_child_emits_report() {
    if std::env::var_os("IGNITE_CLUSTER_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    for line in golden_report().lines() {
        println!("IGNITE_CLUSTER {line}");
    }
}

/// Shrinking the metadata store can only hurt: hit rate falls
/// monotonically and lukewarm latency rises, because evicted metadata
/// turns restored front-end state back into cold misses.
#[test]
fn capacity_sweep_degrades_gracefully() {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 1_000_000;
    let capacities = [2 * 1024, 16 * 1024, 256 * 1024];
    let outcomes: Vec<_> = sweep_capacities(&cfg, &capacities, 3)
        .into_iter()
        .map(|r| r.expect("sweep point must not panic"))
        .collect();
    for pair in outcomes.windows(2) {
        assert!(
            pair[0].store.hit_rate() <= pair[1].store.hit_rate() + 1e-12,
            "hit rate must not fall as capacity grows: {} -> {}",
            pair[0].store.hit_rate(),
            pair[1].store.hit_rate()
        );
        assert!(
            pair[0].peak_footprint_bytes <= pair[1].peak_footprint_bytes,
            "peak footprint must not fall as capacity grows"
        );
    }
    let tight = &outcomes[0];
    let roomy = &outcomes[outcomes.len() - 1];
    assert!(
        tight.store.hit_rate() < roomy.store.hit_rate(),
        "the sweep must actually exercise eviction ({} vs {})",
        tight.store.hit_rate(),
        roomy.store.hit_rate()
    );
    assert!(
        tight.mean_latency > roomy.mean_latency,
        "losing metadata must cost latency: tight {} <= roomy {}",
        tight.mean_latency,
        roomy.mean_latency
    );
}

/// The trace text format is a faithful transport: emitting the generated
/// trace, parsing it back, and serving it reproduces the direct run
/// byte-for-byte (the cluster binary's `--emit-trace`/`--trace` path).
#[test]
fn replayed_trace_reproduces_direct_run() {
    let cfg = golden_cfg();
    let sim = ClusterSim::new(cfg.clone());
    let direct = sim.run();
    let mut arrival = cfg.arrival;
    arrival.functions = direct.functions.len();
    let trace = arrival.generate();
    let text = trace.to_text();
    let parsed = ignite_workloads::arrival::Trace::parse(&text).expect("round-trip parse");
    let replayed = ClusterSim::new(cfg.clone()).run_trace(&parsed);
    let a = ClusterReport::new(cfg.clone(), direct).to_json();
    let b = ClusterReport::new(cfg, replayed).to_json();
    assert_eq!(a, b, "trace replay must reproduce the direct run");
}

/// Tampered reports fail validation (the schema gate the CI smoke job
/// relies on).
#[test]
fn validation_rejects_tampered_reports() {
    let good = golden_report();
    ClusterReport::validate(&good).expect("pristine report validates");
    let wrong_schema = good.replace("ignite-cluster-v1", "ignite-cluster-v0");
    assert!(ClusterReport::validate(&wrong_schema).is_err(), "schema tag must be checked");
    let missing = good.replace("\"makespan_cycles\"", "\"makespan_cyc\"");
    assert!(ClusterReport::validate(&missing).is_err(), "missing fields must be caught");
    assert!(ClusterReport::validate("{}").is_err(), "empty object must be rejected");
}
