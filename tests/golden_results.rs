//! Golden end-to-end fingerprints: the bit-exactness gate for perf work.
//!
//! Simulation results must be a pure function of (workload, config,
//! options) — never of wall-clock speed, thread count, or data-structure
//! layout. This test regenerates a fingerprint (cycles, instructions,
//! topdown splits, MPKIs, replay fault counters per function×config at
//! `RunOptions::quick()` scale) and byte-compares it against the
//! committed snapshot `tests/golden/results.json`.
//!
//! Any hot-path optimization (flattened cache scans, batched decoding,
//! allocation elimination, ...) must reproduce this file *bit-exactly*;
//! a diff here means simulation semantics changed, not just speed.
//!
//! To update the snapshot after an intentional semantic change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test golden_results
//! ```
//!
//! Floats are serialized with Rust's shortest round-trip formatting, so
//! equal text means equal bits.

use std::fmt::Write as _;
use std::path::PathBuf;

use ignite_engine::config::FrontEndConfig;
use ignite_engine::metrics::InvocationResult;
use ignite_engine::protocol::RunOptions;
use ignite_harness::Harness;

/// Fraction of paper scale the fingerprints run at (small enough for CI,
/// large enough that every mechanism — recording, replay, throttling —
/// engages on each suite function).
const GOLDEN_SCALE: f64 = 0.02;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/results.json")
}

fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::nl(),
        FrontEndConfig::jukebox(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_tage(),
        FrontEndConfig::ideal(),
    ]
}

/// Shortest round-trip float formatting: equal strings iff equal bits
/// (all values here are finite).
fn num(x: f64) -> String {
    assert!(x.is_finite(), "non-finite metric in fingerprint");
    format!("{x}")
}

fn push_row(out: &mut String, abbr: &str, config: &str, r: &InvocationResult, last: bool) {
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"function\": \"{abbr}\",");
    let _ = writeln!(out, "      \"config\": \"{config}\",");
    let _ = writeln!(out, "      \"cycles\": {},", r.cycles);
    let _ = writeln!(out, "      \"instructions\": {},", r.instructions);
    let _ = writeln!(out, "      \"topdown\": {{");
    let _ = writeln!(out, "        \"retiring\": {},", num(r.topdown.retiring));
    let _ = writeln!(out, "        \"fetch_bound\": {},", num(r.topdown.fetch_bound));
    let _ = writeln!(out, "        \"bad_speculation\": {},", num(r.topdown.bad_speculation));
    let _ = writeln!(out, "        \"backend_bound\": {}", num(r.topdown.backend_bound));
    let _ = writeln!(out, "      }},");
    let _ = writeln!(out, "      \"l1i_mpki\": {},", num(r.l1i_mpki()));
    let _ = writeln!(out, "      \"btb_mpki\": {},", num(r.btb_mpki()));
    let _ = writeln!(out, "      \"cbp_mpki\": {},", num(r.cbp_mpki()));
    let _ = writeln!(out, "      \"replay\": {{");
    let _ = writeln!(out, "        \"entries_restored\": {},", r.replay.entries_restored);
    let _ = writeln!(out, "        \"l2_prefetches\": {},", r.replay.l2_prefetches);
    let _ = writeln!(out, "        \"metadata_bytes\": {},", r.replay.metadata_bytes);
    let _ = writeln!(out, "        \"throttled_steps\": {},", r.replay.throttled_steps);
    let _ = writeln!(out, "        \"decode_errors\": {},", r.replay.decode_errors);
    let _ = writeln!(out, "        \"entries_dropped\": {},", r.replay.entries_dropped);
    let _ = writeln!(out, "        \"stale_restored\": {},", r.replay.stale_restored);
    let _ = writeln!(out, "        \"watchdog_abandons\": {}", r.replay.watchdog_abandons);
    let _ = writeln!(out, "      }}");
    out.push_str(if last { "    }\n" } else { "    },\n" });
}

/// Regenerates the full fingerprint document.
fn fingerprint() -> String {
    let harness = Harness::new(GOLDEN_SCALE, RunOptions::quick());
    let configs = configs();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ignite-golden-v1\",\n");
    let _ = writeln!(out, "  \"scale\": {},", num(GOLDEN_SCALE));
    out.push_str("  \"opts\": \"quick\",\n");
    out.push_str("  \"results\": [\n");
    for (ci, config) in configs.iter().enumerate() {
        let results = harness.run_config(config);
        assert_eq!(results.len(), harness.abbrs().len());
        for (fi, (abbr, r)) in harness.abbrs().iter().zip(&results).enumerate() {
            let last = ci + 1 == configs.len() && fi + 1 == results.len();
            push_row(&mut out, abbr, &config.name, r, last);
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn golden_fingerprints_match() {
    let current = fingerprint();
    let path = golden_path();
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test golden_results",
            path.display()
        )
    });
    if committed != current {
        // Find the first differing line for a readable failure.
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "golden fingerprint mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nSimulation semantics changed. If intentional, re-bless \
                     with IGNITE_BLESS=1 cargo test -p ignite-harness --test golden_results",
                    i + 1
                );
            }
        }
        panic!(
            "golden fingerprint length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}
