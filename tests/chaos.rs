//! Chaos-layer integration gates: golden v2 report fingerprint,
//! cross-process determinism of the failure schedule, the invocation
//! conservation law, and the zero-cost-when-off contract (a chaos-free
//! run must reproduce the committed v1 golden byte-for-byte).
//!
//! The golden snapshot is the full `ignite-cluster-v2` JSON report of
//! the cluster golden configuration with the default chaos preset and
//! retry policy, byte-compared against `tests/golden/chaos.json`. To
//! update after an intentional semantic change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test chaos
//! ```

use std::path::PathBuf;

use ignite_chaos::ChaosPlan;
use ignite_cluster::{ClusterConfig, ClusterReport, ClusterSim};

/// The cluster golden configuration plus the default failure preset on
/// a fixed chaos seed. Violent enough that every failure mode fires
/// within the horizon.
fn chaos_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg.chaos = Some(ChaosPlan::default_preset().seeded(7));
    cfg
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/chaos.json")
}

fn golden_report() -> String {
    let cfg = chaos_cfg();
    let outcome = ClusterSim::new(cfg.clone()).run();
    ClusterReport::new(cfg, outcome).to_json()
}

#[test]
fn golden_chaos_report_matches() {
    let current = golden_report();
    ClusterReport::validate(&current).expect("golden chaos report must self-validate");
    assert!(current.contains("\"schema\": \"ignite-cluster-v2\""));
    let path = golden_path();
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test chaos",
            path.display()
        )
    });
    if committed != current {
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "chaos golden mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nChaos semantics changed. If intentional, re-bless \
                     with IGNITE_BLESS=1 cargo test -p ignite-harness --test chaos",
                    i + 1
                );
            }
        }
        panic!(
            "chaos golden length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}

/// Cross-process determinism: a fresh process (fresh ASLR, allocator
/// state, hash seeds) reproduces the same v2 report bytes — including
/// every chaos counter and the conservation law. The child re-runs this
/// test binary with `IGNITE_CHAOS_CHILD=1`.
#[test]
fn chaos_report_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["chaos_child_emits_report", "--exact", "--nocapture"])
            .env("IGNITE_CHAOS_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let report: Vec<&str> = stdout.lines().filter(|l| l.starts_with("IGNITE_CHAOS ")).collect();
        assert!(!report.is_empty(), "child printed no report lines:\n{stdout}");
        report.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different chaos reports");
}

/// Helper for [`chaos_report_identical_across_processes`]: prints the
/// chaos-config report when spawned with `IGNITE_CHAOS_CHILD=1`, does
/// nothing in a normal test run.
#[test]
fn chaos_child_emits_report() {
    if std::env::var_os("IGNITE_CHAOS_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    for line in golden_report().lines() {
        println!("IGNITE_CHAOS {line}");
    }
}

/// The conservation law holds on the outcome itself, not just in the
/// serialized report: every submitted invocation either completed or
/// was dropped with a recorded reason, and the failure preset genuinely
/// exercised retries, degradations and crashes.
#[test]
fn chaos_outcome_conserves_and_recovers() {
    let out = ClusterSim::new(chaos_cfg()).run();
    let ch = out.chaos.as_ref().expect("chaos stats present");
    assert!(ch.conserved(), "conservation violated: {ch:?}");
    assert_eq!(ch.completed, out.invocations);
    assert!(ch.retried_to_success > 0, "no retry recovered: {ch:?}");
    assert!(ch.degraded_total() > 0, "no degradation to cold: {ch:?}");
    assert!(ch.crash_kills > 0, "no crash fired: {ch:?}");
    // Degradation means survival: completions dwarf drops under the
    // default preset.
    assert!(ch.completed > 10 * ch.dropped_total(), "drops dominate: {ch:?}");
}

/// The zero-cost-when-off contract, end to end: running the cluster
/// golden configuration with `chaos: None` must reproduce the committed
/// v1 golden snapshot byte-for-byte. This is the regression gate that
/// keeps the failure model strictly additive.
#[test]
fn chaos_off_reproduces_committed_v1_golden() {
    let mut cfg = chaos_cfg();
    cfg.chaos = None;
    let outcome = ClusterSim::new(cfg.clone()).run();
    let current = ClusterReport::new(cfg, outcome).to_json();
    let v1 = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/cluster.json");
    let committed = std::fs::read_to_string(&v1)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", v1.display()));
    assert_eq!(
        committed, current,
        "a chaos-free run no longer matches the v1 golden: chaos is not zero-cost-when-off"
    );
}

/// Re-seeding chaos replays the identical arrival stream (`--seed` and
/// `--chaos-seed` are independent), while distinct chaos seeds inject
/// distinct failure schedules.
#[test]
fn chaos_seed_independent_of_arrival_seed() {
    let a = ClusterSim::new(chaos_cfg()).run();
    let mut other = chaos_cfg();
    other.chaos = Some(ChaosPlan::default_preset().seeded(997));
    let b = ClusterSim::new(other).run();
    let (ca, cb) = (a.chaos.as_ref().unwrap(), b.chaos.as_ref().unwrap());
    assert_eq!(ca.submitted, cb.submitted, "chaos seed leaked into the arrival stream");
    assert_ne!(
        (ca.attempts_failed, ca.retry_cycles),
        (cb.attempts_failed, cb.retry_cycles),
        "distinct chaos seeds produced identical failure schedules"
    );
}
