//! Multi-node integration gates: golden report fingerprint for a
//! 3-node affinity/hybrid cluster, cross-process determinism, the
//! single-node byte-identity contract (`--nodes 1 --scheduler fifo
//! --keepalive none` must reproduce every committed golden, chaos on
//! and off), validator rejection of mislabeled per-node sections, and
//! CLI exit-code regression tests for bad topology specs.
//!
//! The golden snapshot is the full JSON report of the cluster golden
//! configuration reshaped to 3 nodes x 2 cores under affinity routing
//! and hybrid-histogram keep-alive, byte-compared against
//! `tests/golden/multinode.json`. To update after an intentional
//! semantic change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test multinode
//! ```

use std::path::PathBuf;

use ignite_chaos::ChaosPlan;
use ignite_cluster::{
    ClusterConfig, ClusterReport, ClusterSim, KeepAliveKind, SchedulerKind, Topology,
};

/// The pinned multi-node golden configuration: the cluster golden
/// shape (800k-cycle horizon, 8 KiB stores) spread over 3 nodes of
/// 2 cores each, affinity routing, hybrid keep-alive.
fn multinode_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        cores: 2,
        topology: Topology {
            nodes: 3,
            scheduler: SchedulerKind::Affinity,
            keepalive: KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
        },
        ..ClusterConfig::default()
    };
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn golden_report() -> String {
    let cfg = multinode_cfg();
    let outcome = ClusterSim::new(cfg.clone()).run();
    ClusterReport::new(cfg, outcome).to_json()
}

#[test]
fn golden_multinode_report_matches() {
    let current = golden_report();
    ClusterReport::validate(&current).expect("multinode golden must self-validate");
    let path = golden_dir().join("multinode.json");
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test multinode",
            path.display()
        )
    });
    if committed != current {
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "multinode golden mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nScheduling semantics changed. If intentional, re-bless \
                     with IGNITE_BLESS=1 cargo test -p ignite-harness --test multinode",
                    i + 1
                );
            }
        }
        panic!(
            "multinode golden length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}

/// Cross-process determinism: a fresh process (fresh ASLR, allocator
/// state, hash seeds) reproduces the same multi-node report bytes —
/// scheduler RNG draws, keep-alive histograms and all.
#[test]
fn multinode_report_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["multinode_child_emits_report", "--exact", "--nocapture"])
            .env("IGNITE_MULTINODE_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let report: Vec<&str> =
            stdout.lines().filter(|l| l.starts_with("IGNITE_MULTINODE ")).collect();
        assert!(!report.is_empty(), "child printed no report lines:\n{stdout}");
        report.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different multinode reports");
}

/// Helper for [`multinode_report_identical_across_processes`]: prints
/// the multinode-config report when spawned with
/// `IGNITE_MULTINODE_CHILD=1`, does nothing in a normal test run.
#[test]
fn multinode_child_emits_report() {
    if std::env::var_os("IGNITE_MULTINODE_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    for line in golden_report().lines() {
        println!("IGNITE_MULTINODE {line}");
    }
}

/// The zero-cost-when-off contract: an explicit default topology
/// (1 node, fifo, no keep-alive) reproduces the committed single-node
/// goldens byte-for-byte — the chaos-free v1 report AND the chaos v2
/// report. This is what lets the scheduler land without re-blessing
/// any existing snapshot.
#[test]
fn default_topology_reproduces_committed_goldens() {
    let run = |chaos: bool| {
        let mut cfg = ClusterConfig::default();
        cfg.arrival.horizon_cycles = 800_000;
        cfg.store.capacity_bytes = 8 * 1024;
        cfg.topology =
            Topology { nodes: 1, scheduler: SchedulerKind::Fifo, keepalive: KeepAliveKind::None };
        if chaos {
            cfg.chaos = Some(ChaosPlan::default_preset().seeded(7));
        }
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome).to_json()
    };
    let v1 = std::fs::read_to_string(golden_dir().join("cluster.json"))
        .expect("committed cluster golden");
    assert_eq!(run(false), v1, "1-node fifo/none run must match the committed v1 golden");
    let v2 =
        std::fs::read_to_string(golden_dir().join("chaos.json")).expect("committed chaos golden");
    assert_eq!(run(true), v2, "1-node fifo/none chaos run must match the committed v2 golden");
}

/// Mislabeled per-node sections must not validate: pairing between the
/// config keys and the nodes array is enforced in both directions, as
/// are per-node labels and the per-node conservation law.
#[test]
fn validator_rejects_mislabeled_node_sections() {
    let good = golden_report();
    ClusterReport::validate(&good).expect("pristine multinode report validates");
    // Node-array length disagreeing with the config count.
    let bad = good.replacen("\"nodes\": 3", "\"nodes\": 4", 1);
    assert!(ClusterReport::validate(&bad).is_err(), "length mismatch must be caught");
    // A nodes array with no config key claiming it.
    let bad = good.replacen("    \"nodes\": 3,\n", "", 1);
    assert!(ClusterReport::validate(&bad).is_err(), "orphan nodes array must be caught");
    // A config key with the array renamed away.
    let bad = good.replacen("  \"nodes\": [", "  \"nodez\": [", 1);
    assert!(ClusterReport::validate(&bad).is_err(), "missing nodes array must be caught");
    // An unparseable keep-alive spec.
    let bad = good.replacen("\"keepalive\": \"hybrid:50000\"", "\"keepalive\": \"hybird\"", 1);
    assert!(ClusterReport::validate(&bad).is_err(), "bad keepalive spec must be caught");
    // A node claiming an index it does not occupy.
    let bad = good.replacen("\"node\": 0,", "\"node\": 1,", 1);
    assert!(ClusterReport::validate(&bad).is_err(), "node label must match its position");
    // Cold-start accounting without a multi-node config.
    let single = {
        let mut cfg = ClusterConfig::default();
        cfg.arrival.horizon_cycles = 800_000;
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome).to_json()
    };
    let bad = single.replacen(
        "      \"metadata_hit_rate\":",
        "      \"cold_starts\": 1,\n      \"metadata_hit_rate\":",
        1,
    );
    assert!(
        ClusterReport::validate(&bad).is_err(),
        "cold-start keys under a single-node config must be caught"
    );
}

/// Bad topology specs exit nonzero with a diagnostic, never a panic:
/// usage errors (unknown scheduler/keep-alive, zero windows) exit 2,
/// and a structurally invalid config (zero nodes) fails validation
/// with exit 1.
#[test]
fn cli_rejects_bad_topology_specs_with_nonzero_exit() {
    let bin = env!("CARGO_BIN_EXE_cluster");
    let run = |args: &[&str]| {
        let out = std::process::Command::new(bin).args(args).output().expect("spawn cluster");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        (out.status.code(), stderr)
    };
    let (code, err) = run(&["--scheduler", "least_loaded"]);
    assert_eq!(code, Some(2), "scheduler typo must be a usage error: {err}");
    assert!(err.contains("unknown scheduler spec"), "stderr: {err}");
    let (code, err) = run(&["--keepalive", "sometimes"]);
    assert_eq!(code, Some(2), "keep-alive typo must be a usage error: {err}");
    assert!(err.contains("unknown keepalive spec"), "stderr: {err}");
    let (code, err) = run(&["--keepalive", "fixed:0"]);
    assert_eq!(code, Some(2), "zero window must be a usage error: {err}");
    assert!(err.contains("window_cycles"), "stderr: {err}");
    let (code, err) = run(&["--scheduler", "random:0"]);
    assert_eq!(code, Some(2), "zero choices must be a usage error: {err}");
    assert!(err.contains("choices"), "stderr: {err}");
    let (code, err) = run(&["--nodes", "0"]);
    assert_eq!(code, Some(1), "zero nodes must fail validation: {err}");
    assert!(err.contains("topology.nodes"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must be a diagnostic, not a panic: {err}");
}

/// The CLI accepts every documented spec form and the emitted report
/// self-validates through the `--validate` path.
#[test]
fn cli_multinode_report_round_trips_through_validate() {
    let bin = env!("CARGO_BIN_EXE_cluster");
    let dir = std::env::temp_dir().join(format!("ignite-multinode-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let report = dir.join("mn.json");
    let out = std::process::Command::new(bin)
        .args([
            "--nodes",
            "3",
            "--cores",
            "2",
            "--scheduler",
            "random:3",
            "--keepalive",
            "hybrid:40000",
            "--horizon",
            "400000",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("spawn cluster");
    assert!(out.status.success(), "run failed: {}", String::from_utf8_lossy(&out.stderr));
    let check = std::process::Command::new(bin)
        .args(["--validate", report.to_str().unwrap()])
        .output()
        .expect("spawn validator");
    assert!(
        check.status.success(),
        "emitted report failed validation: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let text = std::fs::read_to_string(&report).expect("report written");
    assert!(text.contains("\"scheduler\": \"random:3\""));
    assert!(text.contains("\"keepalive\": \"hybrid:40000\""));
    let _ = std::fs::remove_dir_all(&dir);
}
