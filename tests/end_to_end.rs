//! End-to-end integration: the full stack (workload generation → trace →
//! engine → metrics) reproduces the paper's headline ordering on a single
//! function, and the public API composes as documented.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_engine::InvocationResult;
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;

fn run(fe: &FrontEndConfig, f: &PreparedFunction) -> InvocationResult {
    run_function(&UarchConfig::ice_lake_like(), fe, f, RunOptions::quick())
}

fn function() -> PreparedFunction {
    let suite = Suite::paper_suite_scaled(0.1);
    PreparedFunction::from_suite(suite.by_abbr("Auth-N").expect("suite function"), 0)
}

#[test]
fn headline_config_ordering() {
    let f = function();
    let nl = run(&FrontEndConfig::nl(), &f);
    let boomerang = run(&FrontEndConfig::boomerang(), &f);
    let bjb = run(&FrontEndConfig::boomerang_jukebox(), &f);
    let ignite = run(&FrontEndConfig::ignite(), &f);
    let ideal = run(&FrontEndConfig::ideal(), &f);

    assert!(boomerang.cpi() < nl.cpi(), "Boomerang beats NL");
    assert!(ignite.cpi() < bjb.cpi(), "Ignite beats Boomerang+JB");
    assert!(ideal.cpi() < ignite.cpi(), "Ideal is the upper bound");
}

#[test]
fn ignite_reduces_all_three_frontend_miss_rates() {
    let f = function();
    let bjb = run(&FrontEndConfig::boomerang_jukebox(), &f);
    let ignite = run(&FrontEndConfig::ignite(), &f);
    assert!(ignite.l1i_mpki() < bjb.l1i_mpki(), "L1-I");
    assert!(ignite.btb_mpki() < bjb.btb_mpki(), "BTB");
    assert!(ignite.cbp_mpki() < bjb.cbp_mpki(), "CBP");
}

#[test]
fn ignite_covers_initial_mispredictions() {
    let f = function();
    let bjb = run(&FrontEndConfig::boomerang_jukebox(), &f);
    let ignite = run(&FrontEndConfig::ignite(), &f);
    assert!(
        ignite.initial_mpki() < bjb.initial_mpki() * 0.6,
        "Ignite initial {} vs B+JB initial {}",
        ignite.initial_mpki(),
        bjb.initial_mpki()
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let f = function();
    let r = run(&FrontEndConfig::ignite(), &f);
    // Top-down cycles reconcile with total cycles.
    let diff = (r.topdown.total() - r.cycles as f64).abs() / r.cycles as f64;
    assert!(diff < 0.02, "topdown drift {diff}");
    // Misprediction split sums to the total.
    assert_eq!(r.initial_mispredictions + r.subsequent_mispredictions, r.cbp_mispredictions);
    // Traffic categories are all populated for Ignite.
    assert!(r.traffic.useful_instruction_bytes > 0);
    assert!(r.traffic.record_metadata_bytes > 0);
    assert!(r.traffic.replay_metadata_bytes > 0);
}

#[test]
fn per_language_character_shows_up() {
    // NodeJS functions are branch-dense, so their conditional branch count
    // per kilo-instruction exceeds Go's (Table 1 / Fig. 2 character).
    let suite = Suite::paper_suite_scaled(0.1);
    let node = PreparedFunction::from_suite(suite.by_abbr("Auth-N").unwrap(), 0);
    let go = PreparedFunction::from_suite(suite.by_abbr("Auth-G").unwrap(), 1);
    let rn = run(&FrontEndConfig::nl(), &node);
    let rg = run(&FrontEndConfig::nl(), &go);
    let node_density = rn.conditional_branches as f64 / rn.instructions as f64;
    let go_density = rg.conditional_branches as f64 / rg.instructions as f64;
    assert!(node_density > go_density, "node {node_density} vs go {go_density}");
}
