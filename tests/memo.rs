//! Memoization integration gates: memo-on runs must be byte-identical
//! to memo-off runs on every committed golden configuration (plain
//! cluster, chaos, 3-node multinode, Azure traffic, MMPP traffic), the
//! memoized report is pinned as its own golden snapshot, and the sweep
//! output is byte-identical across `--jobs` counts, with and without a
//! shared memo cache.
//!
//! The golden snapshot is the full JSON report of the cluster golden
//! configuration run through a fresh memo cache — identical to
//! `tests/golden/cluster.json` except for the appended `memo` counter
//! section. To update after an intentional change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test memo
//! ```

use std::path::PathBuf;

use ignite_chaos::ChaosPlan;
use ignite_cluster::{
    ClusterConfig, ClusterOutcome, ClusterReport, ClusterSim, KeepAliveKind, MemoCache,
    SchedulerKind, Topology,
};
use ignite_obs::NullSink;
use ignite_traffic::{AzureSource, AzureTrace, TrafficSpec};
use ignite_workloads::arrival::ArrivalSource;
use ignite_workloads::Suite;

/// The CI smoke-job spec strings, mirrored from `tests/traffic.rs`.
const AZURE_SPEC: &str = "azure:tests/fixtures/azure_mini.csv,cpm=800000";
const MMPP_SPEC: &str = "mmpp:mults=1/6,dwells=300000/60000";
const AZURE_CPM: u64 = 800_000;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

/// The cluster golden envelope: 800k-cycle horizon, 8 KiB store.
fn cluster_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

/// The chaos golden configuration (default preset, seed 7).
fn chaos_cfg() -> ClusterConfig {
    let mut cfg = cluster_cfg();
    cfg.chaos = Some(ChaosPlan::default_preset().seeded(7));
    cfg
}

/// The multi-node golden configuration: 3 nodes of 2 cores, affinity
/// routing, hybrid keep-alive.
fn multinode_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        cores: 2,
        topology: Topology {
            nodes: 3,
            scheduler: SchedulerKind::Affinity,
            keepalive: KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
        },
        ..ClusterConfig::default()
    };
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

/// The traffic golden configuration for `spec`.
fn traffic_cfg(spec: &str) -> ClusterConfig {
    let mut cfg = cluster_cfg();
    cfg.traffic = Some(spec.to_string());
    cfg
}

/// Builds the workload source the binary would build for `spec`, with
/// the Azure fixture path resolved against the repo root.
fn traffic_source(cfg: &ClusterConfig, spec: &str) -> Box<dyn ArrivalSource> {
    let suite = Suite::paper_suite_scaled(cfg.scale);
    if spec == AZURE_SPEC {
        let text = std::fs::read_to_string(repo_path("tests/fixtures/azure_mini.csv"))
            .expect("read committed azure fixture");
        let trace = AzureTrace::parse(&text).expect("committed fixture must parse");
        Box::new(AzureSource::new(trace, &suite, AZURE_CPM))
    } else {
        TrafficSpec::parse(spec)
            .expect("golden spec must parse")
            .build(&cfg.arrival, &suite)
            .expect("golden spec must build")
    }
}

/// Strips the memo counters — the only field memoization is allowed to
/// change — so outcomes compare against their non-memoized twins.
fn sans_memo(mut out: ClusterOutcome) -> ClusterOutcome {
    out.memo = None;
    out
}

/// Asserts that memoizing `cfg` moves nothing but the memo counters,
/// for both a cold cache (all misses) and a warmed one (all hits).
fn assert_memo_transparent(name: &str, cfg: ClusterConfig) {
    let sim = ClusterSim::new(cfg);
    let plain = sim.run();
    let cache = MemoCache::default();
    let cold = sim.run_memo(&cache);
    let stats = cold.memo.expect("memoized run must carry counters");
    assert!(stats.lookups > 0, "{name}: memoized run never consulted the cache");
    assert_eq!(sans_memo(cold), plain, "{name}: cold-cache memoized outcome diverged");
    let warm = sim.run_memo(&cache);
    let warm_stats = warm.memo.expect("memoized run must carry counters");
    assert_eq!(warm_stats.misses, 0, "{name}: identical warmed re-run must hit throughout");
    assert_eq!(sans_memo(warm), plain, "{name}: warmed-cache memoized outcome diverged");
}

#[test]
fn memo_is_transparent_on_the_cluster_golden() {
    assert_memo_transparent("cluster", cluster_cfg());
}

#[test]
fn memo_is_transparent_on_the_chaos_golden() {
    assert_memo_transparent("chaos", chaos_cfg());
}

#[test]
fn memo_is_transparent_on_the_multinode_golden() {
    assert_memo_transparent("multinode", multinode_cfg());
}

/// Traffic runs drive the simulator from a streamed source, so the
/// memoized twin replays a freshly built source through the memo entry
/// point rather than `run_memo`'s internal trace.
fn assert_memo_transparent_traffic(name: &str, spec: &str) {
    let cfg = traffic_cfg(spec);
    let sim = ClusterSim::new(cfg.clone());
    let plain = {
        let mut source = traffic_source(&cfg, spec);
        sim.run_source(&mut *source)
    };
    let cache = MemoCache::default();
    let cold = {
        let mut source = traffic_source(&cfg, spec);
        sim.run_source_memo_obs(&mut *source, &mut NullSink, &cache)
    };
    assert_eq!(sans_memo(cold), plain, "{name}: cold-cache memoized outcome diverged");
    let warm = {
        let mut source = traffic_source(&cfg, spec);
        sim.run_source_memo_obs(&mut *source, &mut NullSink, &cache)
    };
    let stats = warm.memo.expect("memoized run must carry counters");
    assert_eq!(stats.misses, 0, "{name}: identical warmed re-run must hit throughout");
    assert_eq!(sans_memo(warm), plain, "{name}: warmed-cache memoized outcome diverged");
}

#[test]
fn memo_is_transparent_on_the_azure_traffic_golden() {
    assert_memo_transparent_traffic("traffic_azure", AZURE_SPEC);
}

#[test]
fn memo_is_transparent_on_the_mmpp_traffic_golden() {
    assert_memo_transparent_traffic("traffic_mmpp", MMPP_SPEC);
}

/// The memoized report of the cluster golden configuration through a
/// fresh cache — what `cluster --horizon 800000 --capacity 8192 --memo`
/// emits, so the CI smoke job can `cmp` against it byte-for-byte.
fn memo_golden_report() -> String {
    let cfg = cluster_cfg();
    let outcome = ClusterSim::new(cfg.clone()).run_memo(&MemoCache::default());
    ClusterReport::new(cfg, outcome).to_json()
}

#[test]
fn golden_memo_report_matches() {
    let current = memo_golden_report();
    ClusterReport::validate(&current).expect("golden memo report must self-validate");
    assert!(current.contains("\"memo\""), "memoized report must carry the memo section");
    let path = repo_path("tests/golden/memo.json");
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test memo",
            path.display()
        )
    });
    if committed != current {
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "memo golden mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nMemoization semantics changed. If intentional, \
                     re-bless with IGNITE_BLESS=1 cargo test -p ignite-harness --test memo",
                    i + 1
                );
            }
        }
        panic!(
            "memo golden length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}

/// Every line of the memo golden except the memo section must match the
/// plain cluster golden: memoization appends counters, nothing else.
#[test]
fn memo_golden_is_the_cluster_golden_plus_counters() {
    let memoized = memo_golden_report();
    let cfg = cluster_cfg();
    let plain = {
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome).to_json()
    };
    let strip = |text: &str| -> Vec<String> {
        let mut kept = Vec::new();
        let mut in_memo = false;
        for line in text.lines() {
            if line.trim_start().starts_with("\"memo\"") {
                in_memo = true;
            }
            if !in_memo {
                kept.push(line.to_string());
            } else if line.trim_start().starts_with('}') {
                in_memo = false;
                // The section before `memo` gained a trailing comma;
                // normalize it away so the suffix lines align too.
            }
        }
        kept.iter().map(|l| l.trim_end_matches(',').to_string()).collect()
    };
    assert_eq!(strip(&memoized), strip(&plain), "memo may only append its counter section");
}

/// Spawns the cluster binary on a capacity sweep and returns stdout.
fn sweep_stdout(jobs: &str, memo: bool) -> String {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_cluster"));
    cmd.args(["--horizon", "600000", "--sweep", "2048,8192,65536", "--jobs", jobs]);
    if memo {
        cmd.arg("--memo");
    }
    let out = cmd.output().expect("spawn cluster binary");
    assert!(
        out.status.success(),
        "cluster --jobs {jobs} (memo: {memo}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 sweep output")
}

/// Cross-process `--jobs` pinning: the panic-isolated fanout must merge
/// sweep points in index order, so a 4-worker sweep prints the same
/// bytes as a serial one.
#[test]
fn sweep_output_is_byte_identical_across_job_counts() {
    assert_eq!(
        sweep_stdout("1", false),
        sweep_stdout("4", false),
        "--jobs 4 sweep output diverged from --jobs 1"
    );
}

/// A shared memo cache across concurrently-running sweep points must
/// not move the table either — at any job count.
#[test]
fn memoized_sweep_output_is_byte_identical_across_job_counts() {
    let plain = sweep_stdout("1", false);
    assert_eq!(sweep_stdout("1", true), plain, "--memo sweep output diverged");
    assert_eq!(sweep_stdout("4", true), plain, "--memo --jobs 4 sweep output diverged");
}
