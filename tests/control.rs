//! Control-plane integration gates: a `StaticPolicy` run must be
//! byte-identical to the plain entry points on every committed golden
//! configuration (the zero-cost-when-off contract), the controller-on
//! report of the bursty MMPP configuration is pinned as its own golden
//! snapshot, the decision audit trail must stay internally consistent
//! (per-rule fire counters == decision-log counts), and the `cluster`
//! binary must reproduce the golden byte-for-byte cross-process.
//!
//! The golden snapshot is the full JSON report of the control golden
//! configuration (2 nodes x 2 cores, hybrid keep-alive, 4 KiB store,
//! MMPP traffic) run under [`CONTROL_SPEC`]. To update after an
//! intentional change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test control
//! ```

use std::path::PathBuf;

use ignite_chaos::ChaosPlan;
use ignite_cluster::{
    ClusterConfig, ClusterOutcome, ClusterReport, ClusterSim, KeepAliveKind, SchedulerKind,
    StaticPolicy, Topology,
};
use ignite_control::{Controller, ControllerSpec};
use ignite_obs::{CtrlRule, EventKind, NullSink, TraceBuffer};
use ignite_traffic::TrafficSpec;
use ignite_workloads::arrival::ArrivalSource;
use ignite_workloads::Suite;

/// The MMPP spec shared with the traffic and memo goldens.
const MMPP_SPEC: &str = "mmpp:mults=1/6,dwells=300000/60000";

/// The control golden's spec: short epochs against a 600k-cycle SLO so
/// the burst phases of the MMPP trace drive core scaling, a low sample
/// floor so replay attribution accrues evidence quickly, and a 4-epoch
/// probe so disabled replay is re-tried within the horizon.
const CONTROL_SPEC: &str = "epoch=50000,slo=600000,min-samples=4,probe=4,min-cores=1";

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

/// The cluster golden envelope: 800k-cycle horizon, 8 KiB store.
fn cluster_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

/// The chaos golden configuration (default preset, seed 7).
fn chaos_cfg() -> ClusterConfig {
    let mut cfg = cluster_cfg();
    cfg.chaos = Some(ChaosPlan::default_preset().seeded(7));
    cfg
}

/// The multi-node golden configuration: 3 nodes of 2 cores, affinity
/// routing, hybrid keep-alive.
fn multinode_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        cores: 2,
        topology: Topology {
            nodes: 3,
            scheduler: SchedulerKind::Affinity,
            keepalive: KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
        },
        ..ClusterConfig::default()
    };
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

/// The control golden configuration: a bursty MMPP workload over 2
/// small nodes with hybrid keep-alive and a tight store, so every
/// actuation axis sees pressure within the horizon.
fn control_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        cores: 2,
        topology: Topology {
            nodes: 2,
            scheduler: SchedulerKind::Fifo,
            keepalive: KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
        },
        ..ClusterConfig::default()
    };
    cfg.arrival.horizon_cycles = 1_500_000;
    cfg.store.capacity_bytes = 4 * 1024;
    cfg.traffic = Some(MMPP_SPEC.to_string());
    cfg.controller = Some(CONTROL_SPEC.to_string());
    cfg
}

/// Builds the MMPP source the binary would build for `cfg`.
fn mmpp_source(cfg: &ClusterConfig) -> Box<dyn ArrivalSource> {
    let suite = Suite::paper_suite_scaled(cfg.scale);
    TrafficSpec::parse(MMPP_SPEC)
        .expect("golden spec must parse")
        .build(&cfg.arrival, &suite)
        .expect("golden spec must build")
}

/// Runs the control golden configuration under a fresh controller.
fn control_outcome(cfg: &ClusterConfig) -> ClusterOutcome {
    let sim = ClusterSim::new(cfg.clone());
    let mut controller =
        Controller::new(ControllerSpec::parse(CONTROL_SPEC).expect("golden spec must parse"));
    let mut source = mmpp_source(cfg);
    sim.run_source_policy_obs(&mut *source, &mut NullSink, &mut controller)
}

/// The zero-cost-when-off contract: threading an explicit
/// `StaticPolicy` through the policy entry point must reproduce the
/// plain entry point exactly on every committed golden configuration.
#[test]
fn static_policy_is_transparent_on_the_goldens() {
    for (name, cfg) in
        [("cluster", cluster_cfg()), ("chaos", chaos_cfg()), ("multinode", multinode_cfg())]
    {
        let sim = ClusterSim::new(cfg.clone());
        let plain = {
            let mut source = cfg.arrival.source();
            sim.run_source_obs(&mut source, &mut NullSink)
        };
        let policied = {
            let mut source = cfg.arrival.source();
            sim.run_source_policy_obs(&mut source, &mut NullSink, &mut StaticPolicy)
        };
        assert_eq!(policied, plain, "{name}: StaticPolicy run diverged from the plain run");
        assert!(policied.controller.is_none(), "{name}: StaticPolicy must not attach stats");
    }
}

/// Controller-off reports must not mention the controller at all —
/// rule-absence is encoded as zero counters *inside* a controller
/// section, never by an empty section on a plain run.
#[test]
fn plain_reports_carry_no_controller_section() {
    let cfg = cluster_cfg();
    let outcome = ClusterSim::new(cfg.clone()).run();
    let text = ClusterReport::new(cfg, outcome).to_json();
    assert!(!text.contains("\"controller\""), "plain report leaked a controller key");
}

/// The controller must be deterministic: two fresh controllers over two
/// fresh sources produce identical outcomes, decisions included.
#[test]
fn controller_runs_are_deterministic() {
    let cfg = control_cfg();
    let a = control_outcome(&cfg);
    let b = control_outcome(&cfg);
    assert_eq!(a, b, "same config + same spec must reproduce the same decisions");
    let stats = a.controller.expect("controller run must carry stats");
    assert!(stats.epochs > 0, "horizon must cross epoch boundaries");
    assert!(!stats.decisions.is_empty(), "golden config must actuate decisions");
}

/// The audit trail is the source of truth: per-rule fire counters must
/// equal the decision-log counts, and the golden config must exercise
/// core scaling, store admission and keep-alive retuning (store_loosen
/// needs a capacity upswing the tight golden store never sees; it is
/// pinned by the unit tests in `ignite-control`).
#[test]
fn golden_config_exercises_the_rule_families() {
    let outcome = control_outcome(&control_cfg());
    let stats = outcome.controller.expect("controller run must carry stats");
    for rule in CtrlRule::ALL {
        let logged = stats.decisions.iter().filter(|d| d.rule == rule).count() as u64;
        assert_eq!(stats.fires(rule), logged, "{}: counter != decision log", rule.name());
    }
    for rule in [
        CtrlRule::ReplayOff,
        CtrlRule::ReplayOn,
        CtrlRule::StoreTighten,
        CtrlRule::CoresUp,
        CtrlRule::CoresDown,
        CtrlRule::KeepAliveRetune,
    ] {
        assert!(stats.fires(rule) > 0, "golden config never fired {}", rule.name());
    }
}

/// With a trace sink attached, every logged decision must also appear
/// as a cause-linked event on the controller track.
#[test]
fn decisions_land_on_the_controller_track() {
    let cfg = control_cfg();
    let sim = ClusterSim::new(cfg.clone());
    let mut controller =
        Controller::new(ControllerSpec::parse(CONTROL_SPEC).expect("golden spec must parse"));
    let mut buf = TraceBuffer::new(1 << 18);
    let mut source = mmpp_source(&cfg);
    let outcome = sim.run_source_policy_obs(&mut *source, &mut buf, &mut controller);
    let stats = outcome.controller.expect("controller run must carry stats");
    let traced: Vec<&ignite_obs::Event> =
        buf.iter().filter(|e| matches!(e.kind, EventKind::Decision { .. })).collect();
    assert_eq!(traced.len(), stats.decisions.len(), "trace and audit log disagree");
    for (ev, d) in traced.iter().zip(stats.decisions.iter()) {
        assert_eq!(ev.ts, d.at, "decision event timestamp != audit entry");
        let EventKind::Decision { rule, epoch, function, value, observed, threshold } = ev.kind
        else {
            unreachable!("filtered to decisions");
        };
        assert_eq!(
            (rule, epoch, function, value, observed, threshold),
            (d.rule, d.epoch, d.function, d.value, d.observed, d.threshold),
            "decision event payload != audit entry"
        );
    }
}

/// The controller-on report of the golden configuration, as emitted by
/// `cluster --nodes 2 --cores 2 --keepalive hybrid --capacity 4096
/// --horizon 1500000 --traffic mmpp:... --controller ...`.
fn control_golden_report() -> String {
    let cfg = control_cfg();
    let outcome = control_outcome(&cfg);
    ClusterReport::new(cfg, outcome).to_json()
}

#[test]
fn golden_control_report_matches() {
    let current = control_golden_report();
    ClusterReport::validate(&current).expect("golden control report must self-validate");
    assert!(current.contains("\"controller\""), "control report must carry the section");
    let path = repo_path("tests/golden/control.json");
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test control",
            path.display()
        )
    });
    if committed != current {
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "control golden mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nController semantics changed. If intentional, \
                     re-bless with IGNITE_BLESS=1 cargo test -p ignite-harness --test control",
                    i + 1
                );
            }
        }
        panic!(
            "control golden length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}

/// Cross-process pinning: the `cluster` binary with the golden flags
/// must reproduce `tests/golden/control.json` byte-for-byte, so the CI
/// smoke job can `cmp` its output directly.
#[test]
fn cluster_binary_reproduces_the_control_golden() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cluster"))
        .args([
            "--nodes",
            "2",
            "--cores",
            "2",
            "--keepalive",
            "hybrid",
            "--capacity",
            "4096",
            "--horizon",
            "1500000",
            "--traffic",
            MMPP_SPEC,
            "--controller",
            CONTROL_SPEC,
        ])
        .output()
        .expect("spawn cluster binary");
    assert!(
        out.status.success(),
        "cluster --controller failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert_eq!(stdout, control_golden_report(), "binary output diverged from the library path");
}

/// The CLI must refuse combinations the controller cannot honor.
#[test]
fn cluster_binary_rejects_controller_with_memo_and_sweep() {
    for extra in [&["--memo"][..], &["--sweep", "2048,8192"][..]] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_cluster"))
            .args(["--controller", "default"])
            .args(extra)
            .output()
            .expect("spawn cluster binary");
        assert!(!out.status.success(), "--controller with {extra:?} must be rejected");
    }
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cluster"))
        .args(["--controller", "epoch=0"])
        .output()
        .expect("spawn cluster binary");
    assert!(!out.status.success(), "a zero epoch must be rejected");
}
