//! Scheduler-invariant property suite: the laws every placement policy
//! must obey regardless of workload, seed, or node numbering.
//!
//! 1. Work conservation — under least-loaded routing, no invocation
//!    waits in a node's queue while any core on that node sits idle
//!    (reconstructed from the event timeline: every queued interval is
//!    covered by invocation spans on every core of the node).
//! 2. Placement determinism — a fixed `(seed, config)` reproduces the
//!    whole outcome exactly, even for the stochastic random:N policy.
//! 3. Tie-break stability — permuting the node order never changes
//!    *what kind* of node a deterministic policy picks: the chosen
//!    load key (and holder status, for affinity) is invariant under
//!    renumbering.
//! 4. Per-node conservation — `submitted == completed + dropped` holds
//!    on every node for arbitrary seeds, with and without chaos.

use ignite_chaos::ChaosPlan;
use ignite_cluster::{
    ClusterConfig, ClusterSim, KeepAliveKind, NodeLoad, Scheduler, SchedulerKind, Topology,
};
use ignite_obs::{EventKind, TraceBuffer, Track};
use proptest::prelude::*;

fn multinode_cfg(
    nodes: usize,
    scheduler: SchedulerKind,
    keepalive: KeepAliveKind,
) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        cores: 2,
        topology: Topology { nodes, scheduler, keepalive },
        ..ClusterConfig::default()
    };
    cfg.arrival.horizon_cycles = 600_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

/// Merged busy intervals (invocation spans) per global core index.
fn busy_intervals(buf: &TraceBuffer, total_cores: usize) -> Vec<Vec<(u64, u64)>> {
    let mut per_core: Vec<Vec<(u64, u64)>> = vec![Vec::new(); total_cores];
    for ev in buf.iter() {
        if let (Track::Core(ci), EventKind::Invocation { .. }) = (ev.track, ev.kind) {
            per_core[ci as usize].push((ev.ts, ev.ts + ev.dur));
        }
    }
    for spans in &mut per_core {
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for &(s, e) in spans.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        *spans = merged;
    }
    per_core
}

fn covers(spans: &[(u64, u64)], start: u64, end: u64) -> bool {
    spans.iter().any(|&(s, e)| s <= start && end <= e)
}

#[test]
fn least_loaded_is_work_conserving() {
    let cfg = multinode_cfg(3, SchedulerKind::LeastLoaded, KeepAliveKind::None);
    let cores_per_node = cfg.cores;
    let total_cores = cores_per_node * cfg.topology.nodes;
    let mut buf = TraceBuffer::new(1 << 20);
    ClusterSim::new(cfg).run_obs(&mut buf);
    assert_eq!(buf.dropped(), 0, "trace buffer must hold the whole run");
    let busy = busy_intervals(&buf, total_cores);
    let mut queued_dispatches = 0u64;
    for ev in buf.iter() {
        if let (Track::Core(ci), EventKind::Dispatch { queue_cycles, .. }) = (ev.track, ev.kind) {
            if queue_cycles == 0 {
                continue;
            }
            queued_dispatches += 1;
            let node = ci as usize / cores_per_node;
            let (wait_start, wait_end) = (ev.ts - queue_cycles, ev.ts);
            for local in 0..cores_per_node {
                let gci = node * cores_per_node + local;
                assert!(
                    covers(&busy[gci], wait_start, wait_end),
                    "work-conservation violated: a job queued on node {node} over \
                     [{wait_start}, {wait_end}) while core {gci} had an idle gap"
                );
            }
        }
    }
    assert!(queued_dispatches > 0, "workload too light to exercise queueing — raise the rate");
}

#[test]
fn placement_is_deterministic_under_a_fixed_seed() {
    for kind in [
        SchedulerKind::Random { choices: 2 },
        SchedulerKind::Random { choices: 3 },
        SchedulerKind::Affinity,
        SchedulerKind::LeastLoaded,
    ] {
        let cfg = multinode_cfg(3, kind, KeepAliveKind::Hybrid { default_window_cycles: 50_000 });
        let first = ClusterSim::new(cfg.clone()).run();
        let second = ClusterSim::new(cfg).run();
        assert_eq!(first, second, "{} must reproduce the outcome bit-exactly", kind.spec());
    }
}

fn node_load_strategy() -> impl Strategy<Value = NodeLoad> {
    (0usize..4, 0usize..6, 0usize..4, any::<bool>()).prop_map(|(busy, queued, free, holds)| {
        NodeLoad { busy_cores: busy, queued, free_cores: free, holds_metadata: holds }
    })
}

fn load_key(l: &NodeLoad) -> (usize, usize) {
    (l.outstanding(), l.queued)
}

proptest! {
    /// Renumbering the nodes must not change the class of node a
    /// deterministic policy selects: least-loaded always picks a
    /// minimal load key, and affinity picks a minimal key among
    /// holders whenever any node holds the metadata.
    #[test]
    fn tie_breaks_are_stable_across_node_renumbering(
        loads in proptest::collection::vec(node_load_strategy(), 2..6),
        rotation in 0usize..6,
    ) {
        let rot = rotation % loads.len();
        let mut renumbered = loads.clone();
        renumbered.rotate_left(rot);

        let mut ll = Scheduler::new(SchedulerKind::LeastLoaded, 9);
        let a = loads[ll.pick(&loads)];
        let b = renumbered[ll.pick(&renumbered)];
        prop_assert_eq!(load_key(&a), load_key(&b), "least-loaded key drifted under renumbering");
        let min_key = loads.iter().map(load_key).min().expect("non-empty");
        prop_assert_eq!(load_key(&a), min_key, "least-loaded must pick a global minimum");

        let mut af = Scheduler::new(SchedulerKind::Affinity, 9);
        let a = loads[af.pick(&loads)];
        let b = renumbered[af.pick(&renumbered)];
        prop_assert_eq!(a.holds_metadata, b.holds_metadata, "holder status drifted");
        prop_assert_eq!(load_key(&a), load_key(&b), "affinity key drifted under renumbering");
        if loads.iter().any(|l| l.holds_metadata) {
            prop_assert!(a.holds_metadata, "affinity must prefer a metadata holder");
            let holder_min = loads
                .iter()
                .filter(|l| l.holds_metadata)
                .map(load_key)
                .min()
                .expect("a holder exists");
            prop_assert_eq!(load_key(&a), holder_min, "affinity must take the lightest holder");
        }
    }
}

proptest! {
    // Each case is a full 600k-cycle cluster run; a handful of seeds is
    // plenty to catch a broken ledger without slowing the suite.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every node's ledger balances for arbitrary chaos seeds and node
    /// counts: jobs either complete or terminally drop on the node that
    /// accepted them, and the cluster-wide sums agree.
    #[test]
    fn per_node_ledgers_conserve_under_chaos(
        chaos_seed in 0u64..1_000,
        nodes in 2usize..5,
        chaos_on in any::<bool>(),
    ) {
        let mut cfg = multinode_cfg(
            nodes,
            SchedulerKind::Random { choices: 2 },
            KeepAliveKind::Fixed { window_cycles: 40_000 },
        );
        if chaos_on {
            cfg.chaos = Some(ChaosPlan::default_preset().seeded(chaos_seed));
        }
        let out = ClusterSim::new(cfg).run();
        prop_assert_eq!(out.nodes.len(), nodes);
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut dropped = 0u64;
        for (i, nd) in out.nodes.iter().enumerate() {
            prop_assert_eq!(
                nd.submitted,
                nd.completed + nd.dropped,
                "node {} ledger out of balance (seed {})", i, chaos_seed
            );
            submitted += nd.submitted;
            completed += nd.completed;
            dropped += nd.dropped;
        }
        prop_assert_eq!(completed, out.invocations, "node completions must sum to the total");
        prop_assert_eq!(
            submitted, completed + dropped,
            "cluster-wide conservation (seed {})", chaos_seed
        );
        if !chaos_on {
            prop_assert_eq!(dropped, 0, "nothing drops without chaos");
        }
    }
}
