//! Observability integration gates: DES-transition trace coverage,
//! cross-process metrics byte-determinism, and the zero-perturbation
//! guarantee (an enabled sink must not change simulation results).

use ignite_cluster::{metrics_for, validate_trace, ClusterConfig, ClusterReport, ClusterSim};
use ignite_obs::{to_chrome_json, ChromeOptions, TraceBuffer};

/// Same pinned configuration as the cluster golden tests: long enough
/// that the store sees hits, misses and evictions, small enough for CI.
fn obs_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

fn traced_run() -> (ClusterConfig, ignite_cluster::ClusterOutcome, TraceBuffer) {
    let cfg = obs_cfg();
    let sim = ClusterSim::new(cfg.clone());
    let mut buf = TraceBuffer::new(1 << 20);
    let outcome = sim.run_obs(&mut buf);
    (cfg, outcome, buf)
}

/// The exported trace passes the validator and contains at least one
/// event for every DES transition type the simulator can take under the
/// pinned configuration (arrival, dispatch, context switch, invocation
/// span, completion) plus store hits/misses/evictions and Ignite
/// record/replay episodes with Top-Down phase attribution.
#[test]
fn cluster_trace_covers_every_des_transition() {
    let (_, outcome, buf) = traced_run();
    let names: Vec<String> = outcome.functions.iter().map(|f| f.abbr.clone()).collect();
    let text = to_chrome_json(
        &buf,
        &ChromeOptions { process_name: "ignite-cluster", function_names: &names },
    );
    let summary = validate_trace(&text).expect("trace must pass the validator");
    assert_eq!(summary.dropped_events, 0, "buffer must hold the whole run");
    for required in [
        "arrival",
        "dispatch",
        "context-switch",
        "complete",
        "store-hit",
        "store-miss",
        "store-evict",
        "record-begin",
        "record-end",
        "replay-begin",
        "replay-end",
    ] {
        assert!(
            summary.events_by_name.get(required).copied().unwrap_or(0) > 0,
            "no '{required}' events in trace; have {:?}",
            summary.events_by_name
        );
    }
    // Invocation spans are named after the function; check by category.
    for category in ["invocation", "topdown"] {
        assert!(
            summary.events_by_category.get(category).copied().unwrap_or(0) > 0,
            "no '{category}' spans in trace; have {:?}",
            summary.events_by_category
        );
    }
    assert_eq!(
        summary.events_by_name.get("arrival").copied().unwrap_or(0),
        outcome.invocations,
        "one arrival event per served invocation"
    );
}

/// Observation is read-only: running with a live sink yields the exact
/// same outcome (and report bytes) as running without one.
#[test]
fn enabled_sink_does_not_perturb_results() {
    let (cfg, observed, _) = traced_run();
    let plain = ClusterSim::new(cfg.clone()).run();
    assert_eq!(plain, observed, "sink must not change the simulation");
    let a = ClusterReport::new(cfg.clone(), plain).to_json();
    let b = ClusterReport::new(cfg, observed).to_json();
    assert_eq!(a, b);
}

/// Cross-process byte-determinism of the metrics exposition: a fresh
/// process (fresh ASLR, allocator state, hash seeds) reproduces the same
/// metrics text. The child re-runs this test binary with
/// `IGNITE_OBS_CHILD=1`, which makes [`obs_child_emits_metrics`] print
/// the pinned-config exposition; two spawns must print identical output.
#[test]
fn metrics_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["obs_child_emits_metrics", "--exact", "--nocapture"])
            .env("IGNITE_OBS_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let lines: Vec<&str> = stdout.lines().filter(|l| l.starts_with("IGNITE_OBS ")).collect();
        assert!(!lines.is_empty(), "child printed no metrics lines:\n{stdout}");
        lines.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different metrics text");
}

/// Helper for [`metrics_identical_across_processes`]: prints the
/// pinned-config metrics exposition (one tagged line per metrics line)
/// when spawned with `IGNITE_OBS_CHILD=1`, does nothing in a normal run.
#[test]
fn obs_child_emits_metrics() {
    if std::env::var_os("IGNITE_OBS_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    let cfg = obs_cfg();
    let outcome = ClusterSim::new(cfg.clone()).run();
    for line in metrics_for(&cfg, &outcome).expose().lines() {
        println!("IGNITE_OBS {line}");
    }
}

/// The Chrome export itself is byte-deterministic for the same run.
#[test]
fn trace_export_is_deterministic() {
    let (_, _, buf_a) = traced_run();
    let (_, _, buf_b) = traced_run();
    let opts = ChromeOptions { process_name: "ignite-cluster", function_names: &[] };
    assert_eq!(to_chrome_json(&buf_a, &opts), to_chrome_json(&buf_b, &opts));
}
