//! Traffic-layer integration gates: golden reports for an Azure-trace
//! and an MMPP workload, cross-process determinism of both, streaming
//! vs materialized equivalence, importer round-trips, and a
//! million-invocation streaming run.
//!
//! The golden snapshots pin the full cluster report — including the
//! `"workload"` fingerprint section — for two shaped workloads under
//! the same small configuration the cluster golden uses (800k-cycle
//! horizon, 8 KiB store). The Azure golden uses the committed fixture
//! `tests/fixtures/azure_mini.csv` with the spec string the CI smoke
//! job passes verbatim, so `cmp` against a binary-produced report
//! must succeed byte-for-byte. To update after an intentional change:
//!
//! ```text
//! IGNITE_BLESS=1 cargo test -p ignite-harness --test traffic
//! ```

use std::path::PathBuf;

use ignite_cluster::{ClusterConfig, ClusterReport, ClusterSim};
use ignite_traffic::{
    materialize, AzureSource, AzureTrace, DiurnalWave, MmppChain, ModulatedSource, TrafficSpec,
};
use ignite_workloads::arrival::{ArrivalSource, Trace};
use ignite_workloads::Suite;
use proptest::prelude::*;

/// The exact spec strings the CI `traffic-smoke` job passes to the
/// cluster binary; they are echoed into the report's config section,
/// so the goldens only match if these stay in sync with CI.
/// cpm=800000 slows the fixture's replay clock so its ~600 invocations
/// arrive near (not far past) the simulated service capacity.
const AZURE_SPEC: &str = "azure:tests/fixtures/azure_mini.csv,cpm=800000";
const MMPP_SPEC: &str = "mmpp:mults=1/6,dwells=300000/60000";
const AZURE_CPM: u64 = 800_000;

/// Same envelope as the cluster golden: 4 cores, 20 functions, a
/// bounded LRU store, an 800k-cycle horizon.
fn golden_cfg(spec: &str) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg.traffic = Some(spec.to_string());
    cfg
}

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

fn fixture_trace() -> AzureTrace {
    let text = std::fs::read_to_string(repo_path("tests/fixtures/azure_mini.csv"))
        .expect("read committed azure fixture");
    AzureTrace::parse(&text).expect("committed fixture must parse")
}

/// Builds the workload source the binary would build for `spec` — the
/// Azure path is resolved against the repo root here (tests run from
/// the package directory; CI runs the binary from the workspace root).
fn golden_source(cfg: &ClusterConfig, spec: &str) -> Box<dyn ArrivalSource> {
    let suite = Suite::paper_suite_scaled(cfg.scale);
    if spec == AZURE_SPEC {
        Box::new(AzureSource::new(fixture_trace(), &suite, AZURE_CPM))
    } else {
        TrafficSpec::parse(spec)
            .expect("golden spec must parse")
            .build(&cfg.arrival, &suite)
            .expect("golden spec must build")
    }
}

fn golden_report(spec: &str) -> String {
    let cfg = golden_cfg(spec);
    let mut source = golden_source(&cfg, spec);
    let outcome = ClusterSim::new(cfg.clone()).run_source(&mut *source);
    ClusterReport::new(cfg, outcome).to_json()
}

fn check_golden(name: &str, current: &str) {
    ClusterReport::validate(current).expect("golden traffic report must self-validate");
    let path = repo_path(&format!("tests/golden/{name}.json"));
    if std::env::var_os("IGNITE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, current).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with \
             IGNITE_BLESS=1 cargo test -p ignite-harness --test traffic",
            path.display()
        )
    });
    if committed != *current {
        for (i, (a, b)) in committed.lines().zip(current.lines()).enumerate() {
            if a != b {
                panic!(
                    "{name} golden mismatch at line {}:\n  committed: {a}\n  \
                     regenerated: {b}\nTraffic semantics changed. If intentional, re-bless \
                     with IGNITE_BLESS=1 cargo test -p ignite-harness --test traffic",
                    i + 1
                );
            }
        }
        panic!(
            "{name} golden length mismatch ({} vs {} bytes); re-bless if intentional",
            committed.len(),
            current.len()
        );
    }
}

#[test]
fn golden_azure_report_matches() {
    check_golden("traffic_azure", &golden_report(AZURE_SPEC));
}

#[test]
fn golden_mmpp_report_matches() {
    check_golden("traffic_mmpp", &golden_report(MMPP_SPEC));
}

/// Cross-process determinism of both shaped workloads: a fresh process
/// (fresh ASLR, allocator state) reproduces the same report bytes. The
/// child re-runs this test binary with `IGNITE_TRAFFIC_CHILD=1`, which
/// makes [`traffic_child_emits_reports`] print both golden reports; two
/// spawns must print identical output.
#[test]
fn traffic_reports_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["traffic_child_emits_reports", "--exact", "--nocapture"])
            .env("IGNITE_TRAFFIC_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let report: Vec<&str> =
            stdout.lines().filter(|l| l.starts_with("IGNITE_TRAFFIC ")).collect();
        assert!(!report.is_empty(), "child printed no report lines:\n{stdout}");
        report.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different traffic reports");
}

/// Helper for [`traffic_reports_identical_across_processes`]: prints
/// both golden-config reports (one tagged line per JSON line) when
/// spawned with `IGNITE_TRAFFIC_CHILD=1`, does nothing otherwise.
#[test]
fn traffic_child_emits_reports() {
    if std::env::var_os("IGNITE_TRAFFIC_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    for spec in [AZURE_SPEC, MMPP_SPEC] {
        for line in golden_report(spec).lines() {
            println!("IGNITE_TRAFFIC {line}");
        }
    }
}

/// Streaming a shaped source through the simulator and replaying its
/// materialized `ignite-trace-v1` form produce byte-identical reports:
/// the lazy pull path adds nothing and loses nothing.
#[test]
fn streaming_matches_materialized_replay() {
    for spec in [AZURE_SPEC, MMPP_SPEC] {
        let cfg = golden_cfg(spec);
        let streamed = {
            let mut source = golden_source(&cfg, spec);
            ClusterSim::new(cfg.clone()).run_source(&mut *source)
        };
        let trace = materialize(&mut *golden_source(&cfg, spec));
        let replayed = ClusterSim::new(cfg.clone()).run_trace(&trace);
        let a = ClusterReport::new(cfg.clone(), streamed).to_json();
        let b = ClusterReport::new(cfg, replayed).to_json();
        assert_eq!(a, b, "streaming vs materialized diverged for {spec}");
    }
}

/// The Azure importer's arrival stream survives the `ignite-trace-v1`
/// text format: materialize, serialize, parse, and the trace is intact.
#[test]
fn azure_import_round_trips_through_trace_v1() {
    let cfg = golden_cfg(AZURE_SPEC);
    let trace = materialize(&mut *golden_source(&cfg, AZURE_SPEC));
    assert_eq!(trace.arrivals.len() as u64, fixture_trace().total_invocations());
    let text = trace.to_text();
    let parsed = Trace::parse(&text).expect("materialized azure trace must parse");
    assert_eq!(parsed.functions, trace.functions);
    assert_eq!(parsed.arrivals, trace.arrivals);
}

/// The committed fixture exercises the skew machinery: its per-function
/// totals are far from uniform, and the mapping spreads functions over
/// distinct suite entries.
#[test]
fn azure_fixture_is_skewed_and_mapped_injectively() {
    let trace = fixture_trace();
    let totals: Vec<u64> = trace.functions.iter().map(|f| f.per_minute.iter().sum()).collect();
    let max = *totals.iter().max().expect("nonempty fixture");
    let min = *totals.iter().min().expect("nonempty fixture");
    assert!(max >= 10 * min.max(1), "fixture should be skewed: {totals:?}");
    let suite = Suite::paper_suite_scaled(0.02);
    let mapping = AzureSource::new(trace, &suite, AZURE_CPM).mapping().to_vec();
    let mut seen = mapping.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), mapping.len(), "8 functions over 20 slots must map injectively");
}

fn drain(source: &mut dyn ArrivalSource) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    while let Some(a) = source.next_arrival() {
        out.push((a.cycle, a.function));
    }
    out
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid MMPP chain is deterministic: two sources built from the
    /// same parameters emit identical streams, ordered and in range.
    #[test]
    fn mmpp_streams_are_deterministic(
        seed in 0u64..1_000_000,
        mults in prop::collection::vec(0.1f64..8.0, 2..5),
        dwell in 10_000.0f64..200_000.0,
    ) {
        let cfg = ignite_workloads::ArrivalConfig {
            seed,
            horizon_cycles: 400_000,
            ..Default::default()
        };
        let dwells = vec![dwell; mults.len()];
        let mut a_src =
            ModulatedSource::new(&cfg, MmppChain::new(mults.clone(), dwells.clone(), cfg.seed));
        let mut b_src = ModulatedSource::new(&cfg, MmppChain::new(mults, dwells, cfg.seed));
        let a = drain(&mut a_src);
        let b = drain(&mut b_src);
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "arrivals must be time-ordered");
        }
        for &(_, f) in &a {
            prop_assert!((f as usize) < cfg.functions);
        }
    }

    /// Same for diurnal modulation, over random period/amplitude.
    #[test]
    fn diurnal_streams_are_deterministic(
        seed in 0u64..1_000_000,
        period in 50_000.0f64..2_000_000.0,
        amp in 0.0f64..1.0,
    ) {
        let cfg = ignite_workloads::ArrivalConfig {
            seed,
            horizon_cycles: 400_000,
            ..Default::default()
        };
        let a = drain(&mut ModulatedSource::new(&cfg, DiurnalWave::new(period, amp)));
        let b = drain(&mut ModulatedSource::new(&cfg, DiurnalWave::new(period, amp)));
        prop_assert_eq!(a, b);
    }

    /// Random well-formed CSV traces round-trip: parse, emit through the
    /// source, materialize, and the arrival count matches the invocation
    /// total while the trace text format reproduces it all.
    #[test]
    fn random_azure_traces_round_trip(
        counts in prop::collection::vec(prop::collection::vec(0u64..40, 4..5), 2..7),
        cpm in 10_000u64..200_000,
    ) {
        let mut csv = String::from("function,duration_p50_ms,memory_p50_mb,m0,m1,m2,m3\n");
        for (i, row) in counts.iter().enumerate() {
            csv.push_str(&format!("fn-{i},{}.5,64", i + 1));
            for c in row {
                csv.push_str(&format!(",{c}"));
            }
            csv.push('\n');
        }
        let trace = AzureTrace::parse(&csv).expect("generated CSV must parse");
        let total = trace.total_invocations();
        let suite = Suite::paper_suite_scaled(0.02);
        let mut source = AzureSource::new(trace, &suite, cpm);
        let materialized = materialize(&mut source);
        prop_assert_eq!(materialized.arrivals.len() as u64, total);
        let parsed = Trace::parse(&materialized.to_text()).expect("round-trip parse");
        prop_assert_eq!(parsed.arrivals, materialized.arrivals);
    }
}

/// A million-invocation MMPP run streams through the simulator without
/// materializing the trace. Ignored by default (tens of seconds in
/// release); CI runs a 100k-invocation variant through the binary.
///
/// ```text
/// cargo test --release -p ignite-harness --test traffic -- --ignored
/// ```
#[test]
#[ignore = "long: ~25G simulated instructions; run with --ignored in release"]
fn million_invocation_mmpp_run_streams() {
    let mut cfg = golden_cfg(MMPP_SPEC);
    // Default MMPP (1x/6x, dwells 300k/60k) averages ~1.83x the base
    // rate of 60/Mcycle => ~110 invocations per Mcycle, so 10G cycles
    // comfortably clears a million arrivals.
    cfg.arrival.horizon_cycles = 10_000_000_000;
    let mut source = golden_source(&cfg, MMPP_SPEC);
    let outcome = ClusterSim::new(cfg.clone()).run_source(&mut *source);
    assert!(
        outcome.workload.arrivals >= 1_000_000,
        "expected a million arrivals, got {}",
        outcome.workload.arrivals
    );
    let report = ClusterReport::new(cfg, outcome).to_json();
    ClusterReport::validate(&report).expect("million-invocation report must validate");
}
