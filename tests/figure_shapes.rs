//! Shape regression tests: the reproduced figures preserve the paper's
//! qualitative results at a moderate scale (25% of paper scale, one
//! measured invocation). These are the repository's acceptance criteria
//! (DESIGN.md §3): who wins, by roughly what factor, where crossovers fall.
//!
//! These run longer than unit tests (~1–2 minutes total).

use ignite_engine::protocol::RunOptions;
use ignite_harness::{figures, Harness};

fn harness() -> Harness {
    Harness::new(0.25, RunOptions::quick())
}

#[test]
fn fig8_headline_speedups() {
    let h = harness();
    let fig = figures::fig8::run(&h);
    let mean = |name: &str| fig.series(name).unwrap().value("Mean").unwrap();

    let boomerang = mean("Boomerang");
    let bjb = mean("Boomerang + JB");
    let ignite = mean("Ignite");
    let ignite_tage = mean("Ignite + TAGE");
    let ideal = mean("Ideal");

    // Ordering (paper Fig. 8).
    assert!(1.0 < boomerang && boomerang < bjb, "NL < Boomerang < B+JB");
    assert!(bjb < ignite, "Ignite {ignite} > B+JB {bjb}");
    assert!(ignite <= ignite_tage, "TAGE restoration adds");
    assert!(ignite_tage < ideal, "Ideal bounds everything");

    // Magnitudes: Ignite's gain is 1.7x+ of Boomerang+JB's (paper: 2.2x),
    // and lands in the tens of percent.
    assert!((ignite - 1.0) / (bjb - 1.0) > 1.7, "gain ratio {}", (ignite - 1.0) / (bjb - 1.0));
    assert!(ignite > 1.25, "Ignite speedup {ignite} in the tens of percent");
}

#[test]
fn fig9a_mpki_reductions() {
    let h = harness();
    let fig = figures::fig9::run_a(&h);
    let get = |cfg: &str, m: &str| fig.series(cfg).unwrap().value(m).unwrap();

    // BTB: Ignite well below Boomerang+JB (paper: 13 -> 1.9 MPKI).
    assert!(get("Ignite", "BTB MPKI") < get("Boomerang + JB", "BTB MPKI") * 0.65);
    // L1-I: clear reduction.
    assert!(get("Ignite", "L1I MPKI") < get("Boomerang + JB", "L1I MPKI") * 0.85);
    // CBP: Ignite below, Ignite+TAGE below that (paper: 19 -> 10 -> 6.6).
    assert!(get("Ignite", "CBP MPKI") < get("Boomerang + JB", "CBP MPKI") * 0.85);
    assert!(get("Ignite + TAGE", "CBP MPKI") < get("Ignite", "CBP MPKI"));
}

#[test]
fn fig1_lukewarm_cpi_gap() {
    let h = harness();
    let fig = figures::fig1::run(&h);
    let luke = fig.series("Interleaved CPI").unwrap().value("Mean").unwrap();
    let warm = fig.series("Back-to-back CPI").unwrap().value("Mean").unwrap();
    assert!(luke / warm > 1.5, "CPI ratio {}", luke / warm);
}

#[test]
fn fig10_bandwidth_crossover() {
    let h = harness();
    let fig = figures::fig10::run(&h);
    let get = |cfg: &str, m: &str| fig.series(cfg).unwrap().value(m).unwrap();
    // The paper's crossover: Ignite's total bandwidth, metadata included,
    // stays at or below Boomerang+JB's. In this reproduction the two run
    // neck-and-neck (within a few percent; DESIGN.md §7 discusses why the
    // paper's 17% margin does not fully reproduce), so assert the bound
    // with a small tolerance.
    assert!(
        get("Ignite", "Total [KiB]") < get("Boomerang + JB", "Total [KiB]") * 1.05,
        "Ignite {} vs B+JB {}",
        get("Ignite", "Total [KiB]"),
        get("Boomerang + JB", "Total [KiB]")
    );
    // Ignite's wrong-path traffic is unambiguously the lowest.
    assert!(
        get("Ignite", "Useless Instructions [KiB]")
            < get("Boomerang + JB", "Useless Instructions [KiB]"),
        "Ignite wrong-path traffic must undercut Boomerang+JB"
    );
    // Wrong-path traffic ordering: NL < Boomerang-based.
    assert!(
        get("NL", "Useless Instructions [KiB]")
            < get("Boomerang + JB", "Useless Instructions [KiB]")
    );
}

#[test]
fn fig11_bim_policy_shape() {
    let h = harness();
    let fig = figures::fig11::run(&h);
    let s = |name: &str| fig.series(name).unwrap().value("Speedup").unwrap();
    assert!(s("BIM wT") > s("BTB only"), "weakly taken helps");
    assert!(s("BIM wNT") < s("BIM wT"), "weakly not-taken is the wrong policy");
}
