//! End-to-end fault-injection robustness (ISSUE 1 acceptance criteria).
//!
//! Corrupted replay metadata must degrade Ignite gracefully: no panics at
//! any fault rate, structural corruption falls back to the record-only
//! (FDP) floor rather than catastrophically below the NL baseline, and the
//! degradation counters are observable in `InvocationResult`.

use ignite_core::FaultPlan;
use ignite_engine::config::FrontEndConfig;
use ignite_harness::Harness;

const RATES: [f64; 5] = [0.0, 0.001, 0.01, 0.1, 1.0];

fn harness() -> Harness {
    let mut h = Harness::for_tests();
    h.set_threads(2);
    h
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn mean_speedup(h: &Harness, fe: &FrontEndConfig) -> f64 {
    let baseline = h.run_config(&FrontEndConfig::nl());
    let results = h.run_config(fe);
    let per: Vec<f64> = baseline.iter().zip(&results).map(|(b, r)| b.cpi() / r.cpi()).collect();
    mean(&per)
}

#[test]
fn no_panic_at_any_bit_flip_rate() {
    let h = harness();
    for rate in RATES {
        let fe = FrontEndConfig::ignite()
            .with_faults(&format!("flip {rate}"), FaultPlan::bit_flips(rate, 7));
        // run_config panics on any per-function failure, so simply
        // completing proves the whole suite survived this rate.
        let results = h.run_config(&fe);
        assert!(results.iter().all(|r| r.instructions > 0), "rate {rate}");
    }
}

#[test]
fn no_panic_at_any_stale_rate() {
    let h = harness();
    for rate in RATES {
        let fe = FrontEndConfig::ignite()
            .with_faults(&format!("stale {rate}"), FaultPlan::stale(rate, 7));
        let results = h.run_config(&fe);
        assert!(results.iter().all(|r| r.instructions > 0), "rate {rate}");
    }
}

#[test]
fn fully_corrupted_metadata_lands_at_the_record_only_floor() {
    let h = harness();
    // Rate-1.0 bit flips complement every stored byte: no region ever
    // survives validation, so replay contributes nothing and Ignite must
    // behave like its record-only host (FDP) — which is at or above NL.
    let corrupted = FrontEndConfig::ignite().with_faults("flip 1.0", FaultPlan::bit_flips(1.0, 99));
    let s_corrupted = mean_speedup(&h, &corrupted);
    let s_fdp = mean_speedup(&h, &FrontEndConfig::fdp());
    assert!(
        s_corrupted >= 0.98,
        "fully corrupted Ignite fell below the NL baseline: {s_corrupted:.3}"
    );
    assert!(
        (s_corrupted - s_fdp).abs() <= 0.02 * s_fdp,
        "fully corrupted Ignite ({s_corrupted:.3}) should match the FDP floor ({s_fdp:.3})"
    );
}

#[test]
fn degradation_counters_are_observable_end_to_end() {
    let h = harness();
    let corrupted = FrontEndConfig::ignite().with_faults("flip 1.0", FaultPlan::bit_flips(1.0, 3));
    let results = h.run_config(&corrupted);
    let errors: u64 = results.iter().map(|r| r.replay.decode_errors).sum();
    let dropped: u64 = results.iter().map(|r| r.replay.entries_dropped).sum();
    assert!(errors > 0, "corruption must surface as decode_errors");
    assert!(dropped > 0, "corruption must surface as entries_dropped");

    let stale = FrontEndConfig::ignite().with_faults("stale 1.0", FaultPlan::stale(1.0, 3));
    let results = h.run_config(&stale);
    let stale_restored: u64 = results.iter().map(|r| r.replay.stale_restored).sum();
    assert!(stale_restored > 0, "stale restores must surface as stale_restored");

    // Clean runs keep the counters at zero.
    let clean = h.run_config(&FrontEndConfig::ignite());
    assert!(clean.iter().all(|r| r.replay.decode_errors == 0));
    assert!(clean.iter().all(|r| r.replay.entries_dropped == 0));
}

#[test]
fn panic_isolation_returns_partial_results() {
    let mut h = harness();
    h.inject_panic_at(Some(5));
    let results = h.run_config_checked(&FrontEndConfig::nl());
    let failed: Vec<usize> =
        results.iter().enumerate().filter_map(|(i, r)| r.is_err().then_some(i)).collect();
    assert_eq!(failed, vec![5], "exactly the injected function fails");
    assert!(
        results.iter().filter(|r| r.is_ok()).count() == results.len() - 1,
        "all other functions still produce results"
    );
    let failure = results[5].as_ref().unwrap_err();
    assert_eq!(failure.abbr, h.abbrs()[5]);
}
