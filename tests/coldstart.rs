//! Cold-start accounting gates, dslab-faas style, on hand-checkable
//! micro-traces: per-function cold/lukewarm/warm start counts, the
//! slowdown ratio against the function's own best (always-warm)
//! service time, and wasted keep-alive core-cycles with exact expected
//! values derived by hand from the schedule.

use ignite_cluster::{ClusterConfig, ClusterSim, KeepAliveKind, SchedulerKind, Topology};
use ignite_workloads::arrival::{Arrival, Trace};

const WINDOW: u64 = 30_000;

fn at(cycle: u64, function: u32) -> Arrival {
    Arrival { cycle, function }
}

/// Two nodes, one core each, affinity routing, fixed keep-alive.
///
/// Hand-traced schedule: f0 arrives at 0 and routes to node 0 (no
/// holder yet; least-loaded fallback, tie to index 0). f1 arrives at
/// cycle 1 while node 0's only core is busy, so least-loaded sends it
/// to node 1. Every later arrival of each function finds its metadata
/// on its home node and affinity keeps it there: node 0 serves f0
/// three times, node 1 serves f1 twice, each function alone on its
/// core.
fn two_node_cfg() -> ClusterConfig {
    ClusterConfig {
        cores: 1,
        topology: Topology {
            nodes: 2,
            scheduler: SchedulerKind::Affinity,
            keepalive: KeepAliveKind::Fixed { window_cycles: WINDOW },
        },
        ..ClusterConfig::default()
    }
}

fn two_node_trace() -> Trace {
    Trace {
        functions: 2,
        arrivals: vec![at(0, 0), at(1, 1), at(200_000, 0), at(200_001, 1), at(400_000, 0)],
    }
}

#[test]
fn micro_trace_counts_cold_and_warm_starts_exactly() {
    let out = ClusterSim::new(two_node_cfg()).run_trace(&two_node_trace());
    assert!(out.makespan < 500_000, "services must fit the 200k gaps: {}", out.makespan);
    let f0 = &out.functions[0];
    let f1 = &out.functions[1];
    // First sight of each function is a store miss (cold); every rerun
    // finds its region on its home node with zero interleaving
    // distance (warm). Nothing ever runs lukewarm here: each function
    // owns its core outright.
    assert_eq!(
        (f0.cold_starts, f0.lukewarm_starts, f0.warm_starts),
        (1, 0, 2),
        "f0 temperature split"
    );
    assert_eq!(
        (f1.cold_starts, f1.lukewarm_starts, f1.warm_starts),
        (1, 0, 1),
        "f1 temperature split"
    );
    assert_eq!(f0.cold_starts + f0.lukewarm_starts + f0.warm_starts, f0.invocations);
    assert_eq!(f1.cold_starts + f1.lukewarm_starts + f1.warm_starts, f1.invocations);
}

#[test]
fn micro_trace_routes_and_conserves_per_node() {
    let out = ClusterSim::new(two_node_cfg()).run_trace(&two_node_trace());
    assert_eq!(out.nodes.len(), 2);
    assert_eq!(out.nodes[0].submitted, 3, "f0's three arrivals stay on node 0");
    assert_eq!(out.nodes[1].submitted, 2, "f1's two arrivals stay on node 1");
    for (i, nd) in out.nodes.iter().enumerate() {
        assert_eq!(nd.dropped, 0, "node {i}: chaos-free run drops nothing");
        assert_eq!(
            nd.submitted,
            nd.completed + nd.dropped,
            "node {i}: conservation must hold exactly"
        );
    }
    assert_eq!(out.nodes[0].store.misses, 1, "only f0's first fetch misses on node 0");
    assert_eq!(out.nodes[0].store.hits, 2);
    assert_eq!(out.nodes[1].store.misses, 1);
    assert_eq!(out.nodes[1].store.hits, 1);
}

/// Wasted keep-alive cycles, dslab-faas accounting: a kept-warm region
/// that expires unused charges its whole window. Hand count: f0's
/// first two episodes expire (30k each) before the next 200k-spaced
/// arrival, its final slot opens exactly at the makespan (0 idle);
/// f1's first episode expires (30k) and its final slot's full window
/// elapses before the makespan (30k). So 60k cycles per node and per
/// function, 120k total.
#[test]
fn micro_trace_charges_wasted_keepalive_exactly() {
    let out = ClusterSim::new(two_node_cfg()).run_trace(&two_node_trace());
    assert_eq!(out.functions[0].wasted_keepalive_cycles, 2 * WINDOW, "f0 wasted");
    assert_eq!(out.functions[1].wasted_keepalive_cycles, 2 * WINDOW, "f1 wasted");
    assert_eq!(out.nodes[0].wasted_keepalive_cycles, 2 * WINDOW, "node 0 wasted");
    assert_eq!(out.nodes[1].wasted_keepalive_cycles, 2 * WINDOW, "node 1 wasted");
    assert_eq!(out.wasted_keepalive_cycles(), 4 * WINDOW, "cluster-wide wasted");
}

/// Slowdown against always-warm: the cold first start costs more than
/// the best (warm, replayed) service, so mean service exceeds the
/// minimum and the reported slowdown is at least 1.
#[test]
fn micro_trace_reports_slowdown_against_always_warm() {
    let out = ClusterSim::new(two_node_cfg()).run_trace(&two_node_trace());
    for f in out.functions.iter().take(2) {
        assert!(f.min_service > 0, "{}: min service recorded", f.abbr);
        assert!(
            f.min_service as f64 <= f.mean_service,
            "{}: min {} must not exceed mean {}",
            f.abbr,
            f.min_service,
            f.mean_service
        );
        assert!(f.slowdown() >= 1.0, "{}: slowdown {}", f.abbr, f.slowdown());
    }
    // Functions the trace never invokes report inert zeros.
    let idle = &out.functions[2];
    assert_eq!(idle.invocations, 0);
    assert_eq!(idle.min_service, 0);
    assert_eq!(idle.slowdown(), 0.0);
}

/// One node, one core, interleaved functions: the rerun of f0 finds
/// its metadata (a store hit) but one foreign invocation ran in
/// between, so it restarts lukewarm — partially displaced, neither
/// cold nor warm.
#[test]
fn interleaving_turns_warm_starts_lukewarm() {
    let cfg = ClusterConfig {
        cores: 1,
        topology: Topology {
            nodes: 1,
            scheduler: SchedulerKind::Fifo,
            keepalive: KeepAliveKind::None,
        },
        ..ClusterConfig::default()
    };
    let trace = Trace { functions: 2, arrivals: vec![at(0, 0), at(100_000, 1), at(200_000, 0)] };
    let out = ClusterSim::new(cfg).run_trace(&trace);
    let f0 = &out.functions[0];
    let f1 = &out.functions[1];
    assert_eq!(
        (f0.cold_starts, f0.lukewarm_starts, f0.warm_starts),
        (1, 1, 0),
        "f0: cold then lukewarm"
    );
    assert_eq!((f1.cold_starts, f1.lukewarm_starts, f1.warm_starts), (1, 0, 0));
    // Keep-alive off: nothing is ever charged as wasted.
    assert_eq!(out.wasted_keepalive_cycles(), 0);
    assert_eq!(out.functions[0].wasted_keepalive_cycles, 0);
}
