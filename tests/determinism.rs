//! Reproducibility: every layer of the stack is deterministic — identical
//! inputs produce bit-identical results, regardless of thread count.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_harness::Harness;
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;
use ignite_workloads::trace::TraceWalker;

#[test]
fn suite_generation_is_deterministic() {
    let a = Suite::paper_suite_scaled(0.05);
    let b = Suite::paper_suite_scaled(0.05);
    for (fa, fb) in a.functions().iter().zip(b.functions()) {
        assert_eq!(fa.image, fb.image, "{}", fa.profile.abbr);
    }
}

#[test]
fn traces_are_deterministic_per_invocation() {
    let suite = Suite::paper_suite_scaled(0.05);
    let image = &suite.functions()[3].image;
    let a: Vec<_> = TraceWalker::new(image, 7, 20_000).collect();
    let b: Vec<_> = TraceWalker::new(image, 7, 20_000).collect();
    assert_eq!(a, b);
}

#[test]
fn full_simulation_is_deterministic() {
    let suite = Suite::paper_suite_scaled(0.05);
    let f = PreparedFunction::from_suite(&suite.functions()[0], 0);
    let uarch = UarchConfig::ice_lake_like();
    for fe in [FrontEndConfig::nl(), FrontEndConfig::ignite(), FrontEndConfig::confluence()] {
        let a = run_function(&uarch, &fe, &f, RunOptions::default());
        let b = run_function(&uarch, &fe, &f, RunOptions::default());
        assert_eq!(a, b, "{} diverged", fe.name);
    }
}

#[test]
fn harness_results_independent_of_thread_count() {
    let mut h = Harness::new(0.02, RunOptions::quick());
    h.set_threads(1);
    let serial = h.run_config(&FrontEndConfig::ignite());
    h.set_threads(8);
    let parallel = h.run_config(&FrontEndConfig::ignite());
    assert_eq!(serial, parallel);
}

#[test]
fn different_invocations_differ_but_only_slightly() {
    let suite = Suite::paper_suite_scaled(0.05);
    let image = &suite.functions()[0].image;
    let a: Vec<_> = TraceWalker::new(image, 0, 30_000).collect();
    let b: Vec<_> = TraceWalker::new(image, 1, 30_000).collect();
    assert_ne!(a, b, "invocations must not be identical (divergence exists)");
    // But the executed block sets overlap strongly (commonality).
    let sa: std::collections::HashSet<_> = a.iter().map(|x| x.start).collect();
    let sb: std::collections::HashSet<_> = b.iter().map(|x| x.start).collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    assert!(inter / union > 0.85, "block overlap {}", inter / union);
}
