//! Reproducibility: every layer of the stack is deterministic — identical
//! inputs produce bit-identical results, regardless of thread count.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_harness::Harness;
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;
use ignite_workloads::trace::TraceWalker;

#[test]
fn suite_generation_is_deterministic() {
    let a = Suite::paper_suite_scaled(0.05);
    let b = Suite::paper_suite_scaled(0.05);
    for (fa, fb) in a.functions().iter().zip(b.functions()) {
        assert_eq!(fa.image, fb.image, "{}", fa.profile.abbr);
    }
}

#[test]
fn traces_are_deterministic_per_invocation() {
    let suite = Suite::paper_suite_scaled(0.05);
    let image = &suite.functions()[3].image;
    let a: Vec<_> = TraceWalker::new(image, 7, 20_000).collect();
    let b: Vec<_> = TraceWalker::new(image, 7, 20_000).collect();
    assert_eq!(a, b);
}

#[test]
fn full_simulation_is_deterministic() {
    let suite = Suite::paper_suite_scaled(0.05);
    let f = PreparedFunction::from_suite(&suite.functions()[0], 0);
    let uarch = UarchConfig::ice_lake_like();
    for fe in [FrontEndConfig::nl(), FrontEndConfig::ignite(), FrontEndConfig::confluence()] {
        let a = run_function(&uarch, &fe, &f, RunOptions::default());
        let b = run_function(&uarch, &fe, &f, RunOptions::default());
        assert_eq!(a, b, "{} diverged", fe.name);
    }
}

#[test]
fn harness_results_independent_of_thread_count() {
    let mut h = Harness::new(0.02, RunOptions::quick());
    h.set_threads(1);
    let serial = h.run_config(&FrontEndConfig::ignite());
    h.set_threads(8);
    let parallel = h.run_config(&FrontEndConfig::ignite());
    assert_eq!(serial, parallel);
}

/// Thread-count matrix: results under {1, 2, available_parallelism}
/// worker threads are identical, including every `ReplayStats` fault
/// counter (decode errors, dropped entries, stale restores, watchdog
/// abandons) — the degradation path must be as reproducible as the happy
/// path.
#[test]
fn determinism_matrix_across_thread_counts() {
    let avail = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut h = Harness::new(0.02, RunOptions::quick());
    let configs = [FrontEndConfig::nl(), FrontEndConfig::ignite(), FrontEndConfig::ignite_tage()];
    let mut reference: Option<Vec<Vec<ignite_engine::metrics::InvocationResult>>> = None;
    for threads in [1, 2, avail] {
        h.set_threads(threads);
        let matrix = h.run_matrix(&configs);
        match &reference {
            None => reference = Some(matrix),
            Some(reference) => {
                for (config, (want, got)) in configs.iter().zip(reference.iter().zip(&matrix)) {
                    assert_eq!(want, got, "{} diverged at {threads} threads", config.name);
                    for (abbr, (w, g)) in h.abbrs().iter().zip(want.iter().zip(got)) {
                        assert_eq!(
                            w.replay, g.replay,
                            "{}/{abbr}: replay fault counters diverged at {threads} threads",
                            config.name
                        );
                    }
                }
            }
        }
    }
}

/// Cross-process determinism: a fresh process (fresh ASLR, allocator
/// state, hash seeds) reproduces the same fingerprint. The child re-runs
/// this test binary with `IGNITE_DETERMINISM_CHILD=1`, which makes
/// [`child_emits_fingerprint`] print its fingerprint; two spawns must
/// print identical output.
#[test]
fn determinism_across_process_runs() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["child_emits_fingerprint", "--exact", "--nocapture"])
            .env("IGNITE_DETERMINISM_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let fp: Vec<&str> =
            stdout.lines().filter(|l| l.starts_with("IGNITE_FINGERPRINT ")).collect();
        assert!(!fp.is_empty(), "child printed no fingerprint:\n{stdout}");
        fp.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different results");
}

/// Helper for [`determinism_across_process_runs`]: prints a compact
/// fingerprint when spawned with `IGNITE_DETERMINISM_CHILD=1`, does
/// nothing when run as part of the normal test suite.
#[test]
fn child_emits_fingerprint() {
    if std::env::var_os("IGNITE_DETERMINISM_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    let h = Harness::new(0.02, RunOptions::quick());
    for config in [FrontEndConfig::nl(), FrontEndConfig::ignite()] {
        for (abbr, r) in h.abbrs().iter().zip(h.run_config(&config)) {
            println!(
                "IGNITE_FINGERPRINT {}/{abbr} cycles={} instrs={} retiring={} fetch={} bad={} \
                 be={} restored={} decode_errors={} dropped={} stale={} watchdog={}",
                config.name,
                r.cycles,
                r.instructions,
                r.topdown.retiring.to_bits(),
                r.topdown.fetch_bound.to_bits(),
                r.topdown.bad_speculation.to_bits(),
                r.topdown.backend_bound.to_bits(),
                r.replay.entries_restored,
                r.replay.decode_errors,
                r.replay.entries_dropped,
                r.replay.stale_restored,
                r.replay.watchdog_abandons,
            );
        }
    }
}

#[test]
fn different_invocations_differ_but_only_slightly() {
    let suite = Suite::paper_suite_scaled(0.05);
    let image = &suite.functions()[0].image;
    let a: Vec<_> = TraceWalker::new(image, 0, 30_000).collect();
    let b: Vec<_> = TraceWalker::new(image, 1, 30_000).collect();
    assert_ne!(a, b, "invocations must not be identical (divergence exists)");
    // But the executed block sets overlap strongly (commonality).
    let sa: std::collections::HashSet<_> = a.iter().map(|x| x.start).collect();
    let sb: std::collections::HashSet<_> = b.iter().map(|x| x.start).collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    assert!(inter / union > 0.85, "block overlap {}", inter / union);
}
