//! Scope-layer integration gates: the exact attribution invariant over
//! a real cluster run, SLO alert events in the exported trace, report
//! validation and determinism, clean self-diffs over every supported
//! schema, cross-process sketch byte-stability, and the observability
//! health satellites (histogram overflow reaching `+Inf`, trace drops
//! surfaced in report and metrics).

use ignite_cluster::{
    metrics_for, record_trace_health, validate_trace, ClusterConfig, ClusterReport, ClusterSim,
    ObsSummary,
};
use ignite_obs::{EventKind, NullSink, TraceBuffer, Track};
use ignite_scope::{diff, load_samples, ScopeAnalyzer, ScopeReport, SloConfig};

/// Same pinned configuration as the cluster golden test: long enough
/// that recurrences hit the store and eviction engages.
fn golden_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 800_000;
    cfg.store.capacity_bytes = 8 * 1024;
    cfg
}

fn abbrs(outcome: &ignite_cluster::ClusterOutcome) -> Vec<String> {
    outcome.functions.iter().map(|f| f.abbr.clone()).collect()
}

/// The tentpole invariant: every attributed invocation's five
/// components sum *bit-exactly* to its end-to-end latency, the
/// aggregates reconcile with the simulator's own accounting, and
/// attribution observes without perturbing the run.
#[test]
fn attribution_components_tile_every_latency() {
    let cfg = golden_cfg();
    let mut analyzer = ScopeAnalyzer::new(NullSink);
    let observed = ClusterSim::new(cfg.clone()).run_obs(&mut analyzer);
    let plain = ClusterSim::new(cfg).run();
    assert_eq!(plain, observed, "attribution must not change the simulation");

    assert!(observed.invocations > 0, "empty run proves nothing");
    assert_eq!(analyzer.total_invocations(), observed.invocations);
    assert_eq!(analyzer.invocations().len() as u64, observed.invocations);
    let mut latency_sum = 0u64;
    for a in analyzer.invocations() {
        assert_eq!(
            a.component_sum(),
            a.latency_cycles,
            "function {} at ts {}: queue {} + dram {} + cold {} + miss {} + exec {} != {}",
            a.function,
            a.ts,
            a.queue_cycles,
            a.dram_cycles,
            a.cold_frontend_cycles,
            a.store_miss_cycles,
            a.execution_cycles,
            a.latency_cycles
        );
        latency_sum += a.latency_cycles;
    }
    assert_eq!(latency_sum, observed.latency_sum, "attributed latency must total the sim's sum");
    for (i, f) in observed.functions.iter().enumerate() {
        let attributed = analyzer.per_function().get(&(i as u32)).map_or(0, |a| a.invocations);
        assert_eq!(attributed, f.invocations, "function {} ({})", i, f.abbr);
    }
    // The run exercises both sides of the cold/store-miss split.
    let any_cold = analyzer.invocations().iter().any(|a| a.cold_frontend_cycles > 0);
    let any_miss = analyzer.invocations().iter().any(|a| a.store_miss_cycles > 0);
    assert!(any_cold && any_miss, "expected both store-hit and store-miss invocations");
}

#[test]
fn scope_report_validates_and_is_deterministic() {
    let build = || {
        let cfg = golden_cfg();
        let mut analyzer = ScopeAnalyzer::new(NullSink).with_slo(SloConfig::default());
        let outcome = ClusterSim::new(cfg).run_obs(&mut analyzer);
        ScopeReport::from_analyzer(&analyzer, &abbrs(&outcome)).to_json()
    };
    let a = build();
    ScopeReport::validate(&a).expect("scope report must self-validate");
    assert_eq!(a, build(), "scope report must be byte-deterministic");
}

/// A deliberately unmeetable SLO makes burn-rate alerts fire; the
/// transitions land on their own track, survive the Chrome export, and
/// reconcile with the report's counters.
#[test]
fn alerts_fire_into_their_own_track_and_chrome_export() {
    let cfg = golden_cfg();
    let slo = SloConfig { threshold_cycles: 1, min_count: 1, ..SloConfig::default() };
    let mut analyzer = ScopeAnalyzer::new(TraceBuffer::new(1 << 16)).with_slo(slo);
    let outcome = ClusterSim::new(cfg).run_obs(&mut analyzer);
    let report = ScopeReport::from_analyzer(&analyzer, &abbrs(&outcome));
    assert!(report.totals.violations > 0, "every invocation violates a 1-cycle threshold");
    assert!(report.totals.alert_fires > 0, "sustained violations must fire");

    let buf = analyzer.into_inner();
    let fires: Vec<_> =
        buf.iter().filter(|e| matches!(e.kind, EventKind::AlertFire { .. })).collect();
    assert_eq!(fires.len() as u64, report.totals.alert_fires);
    assert!(fires.iter().all(|e| e.track == Track::Alerts), "alerts get their own track");

    let names = abbrs(&outcome);
    let text = ignite_obs::to_chrome_json(
        &buf,
        &ignite_obs::ChromeOptions { process_name: "scope-test", function_names: &names },
    );
    let summary = validate_trace(&text).expect("alerting trace must stay valid");
    assert!(summary.events_by_name.get("alert-fire").copied().unwrap_or(0) > 0);
    assert!(summary.events_by_name.get("attribution").copied().unwrap_or(0) > 0);
}

/// `scope diff` of a run against itself must be clean for every schema
/// it understands — the acceptance gate CI relies on.
#[test]
fn self_diffs_report_zero_regressions() {
    let cfg = golden_cfg();
    let mut analyzer = ScopeAnalyzer::new(NullSink);
    let outcome = ClusterSim::new(cfg.clone()).run_obs(&mut analyzer);
    let scope_json = ScopeReport::from_analyzer(&analyzer, &abbrs(&outcome)).to_json();
    let cluster_json = ClusterReport::new(cfg, outcome).to_json();
    let bench_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../crates/bench/baseline/quick.json");
    let bench_json = std::fs::read_to_string(&bench_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", bench_path.display()));
    for (what, text) in [("scope", &scope_json), ("cluster", &cluster_json), ("bench", &bench_json)]
    {
        let samples = load_samples(text).unwrap_or_else(|e| panic!("{what}: {e}"));
        let d = diff(&samples, &samples, 5.0);
        assert_eq!(d.regressions(), 0, "{what} self-diff regressed:\n{}", d.to_text());
        assert_eq!(d.improvements(), 0, "{what} self-diff improved:\n{}", d.to_text());
        assert!(d.added.is_empty() && d.removed.is_empty());
    }
}

/// Cross-process determinism of the quantile sketch bytes and the scope
/// report built on them: a fresh process (fresh ASLR, allocator state)
/// reproduces the identical serialization.
#[test]
fn sketch_bytes_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args(["scope_child_emits_sketch", "--exact", "--nocapture"])
            .env("IGNITE_SCOPE_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 child output");
        let lines: Vec<&str> = stdout.lines().filter(|l| l.starts_with("IGNITE_SCOPE ")).collect();
        assert!(!lines.is_empty(), "child printed no scope lines:\n{stdout}");
        lines.join("\n")
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two process runs produced different sketch/report bytes");
}

/// Helper for [`sketch_bytes_identical_across_processes`]: prints the
/// overall sketch bytes (hex) and the report when spawned with
/// `IGNITE_SCOPE_CHILD=1`, does nothing in a normal run.
#[test]
fn scope_child_emits_sketch() {
    if std::env::var_os("IGNITE_SCOPE_CHILD").is_none_or(|v| v != "1") {
        return;
    }
    let cfg = golden_cfg();
    let mut analyzer = ScopeAnalyzer::new(NullSink).with_slo(SloConfig::default());
    let outcome = ClusterSim::new(cfg).run_obs(&mut analyzer);
    let hex: String = analyzer.overall().to_bytes().iter().map(|b| format!("{b:02x}")).collect();
    println!("IGNITE_SCOPE sketch {hex}");
    for line in ScopeReport::from_analyzer(&analyzer, &abbrs(&outcome)).to_json().lines() {
        println!("IGNITE_SCOPE {line}");
    }
}

/// Satellite 1: latencies past the last finite bucket still reach the
/// exposition — the `+Inf` bucket and `_count` both cover them, so
/// overflow samples are never silently dropped.
#[test]
fn latency_overflow_reaches_inf_bucket() {
    let cfg = golden_cfg();
    let mut outcome = ClusterSim::new(cfg.clone()).run();
    // Real run first: +Inf must equal the sample count exactly.
    let assert_consistent = |text: &str, expect: u64| {
        let value_of = |line: &str| -> u64 {
            line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()).map(|v| v as u64).unwrap()
        };
        let inf = text
            .lines()
            .find(|l| l.starts_with("ignite_cluster_latency_cycles_bucket") && l.contains("+Inf"))
            .expect("+Inf bucket line");
        assert_eq!(value_of(inf), expect, "+Inf bucket must count every sample");
        let count = text
            .lines()
            .find(|l| l.starts_with("ignite_cluster_latency_cycles_count"))
            .expect("_count line");
        assert_eq!(value_of(count), expect, "_count must match");
    };
    assert_consistent(&metrics_for(&cfg, &outcome).expose(), outcome.invocations);

    // Synthetic worst case: every sample lands in the overflow slot.
    // Finite buckets read 0, yet +Inf and _count still see all of them.
    let slots = outcome.latency_histogram.len();
    outcome.latency_histogram = vec![0; slots];
    outcome.latency_histogram[slots - 1] = outcome.invocations;
    let text = metrics_for(&cfg, &outcome).expose();
    assert_consistent(&text, outcome.invocations);
    for line in text
        .lines()
        .filter(|l| l.starts_with("ignite_cluster_latency_cycles_bucket") && !l.contains("+Inf"))
    {
        let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(v, 0.0, "finite bucket should be empty: {line}");
    }
}

/// Satellite 2: a trace buffer too small for the run drops events, and
/// the drops are surfaced in both the cluster report's `obs` section
/// and the metrics exposition instead of vanishing.
#[test]
fn trace_drops_are_surfaced() {
    let cfg = golden_cfg();
    let mut buf = TraceBuffer::new(64);
    let outcome = ClusterSim::new(cfg.clone()).run_obs(&mut buf);
    assert!(buf.dropped() > 0, "a 64-event ring must overflow on this run");

    let obs = ObsSummary { trace_events: buf.len() as u64, trace_dropped: buf.dropped() };
    let report = ClusterReport::new(cfg.clone(), outcome.clone()).with_obs(obs);
    let text = report.to_json();
    ClusterReport::validate(&text).expect("report with obs section must validate");
    assert!(text.contains(&format!("\"trace_dropped\": {}", buf.dropped())));

    // Untraced reports carry no obs section at all (golden stability).
    let plain = ClusterReport::new(cfg.clone(), outcome.clone()).to_json();
    assert!(!plain.contains("trace_dropped"));
    ClusterReport::validate(&plain).expect("plain report must validate");

    let mut reg = metrics_for(&cfg, &outcome);
    record_trace_health(&mut reg, buf.len() as u64, buf.dropped());
    let metrics = reg.expose();
    assert!(metrics.contains("ignite_trace_events_total"));
    let dropped_line = metrics
        .lines()
        .find(|l| l.starts_with("ignite_trace_dropped_events_total "))
        .expect("dropped-events metric");
    let v: f64 = dropped_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(v as u64, buf.dropped());
}
