//! The lukewarm interleaving protocol (§5.3): flushing microarchitectural
//! state between invocations and selectively preserving structures.

use ignite_engine::config::{FrontEndConfig, StatePolicy};
use ignite_engine::machine::{Machine, PreparedFunction};
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_engine::sim::run_invocation;
use ignite_uarch::UarchConfig;
use ignite_workloads::gen::{generate, GenParams};

fn function() -> PreparedFunction {
    let mut p = GenParams::example("lukewarm");
    p.target_branches = 1_000;
    p.target_code_bytes = 40 * 1024;
    PreparedFunction::from_image(generate(&p), 0, 50_000)
}

fn run_policy(policy: StatePolicy) -> ignite_engine::InvocationResult {
    let fe = FrontEndConfig::nl().with_policy("(policy)", policy);
    run_function(&UarchConfig::ice_lake_like(), &fe, &function(), RunOptions::quick())
}

#[test]
fn lukewarm_degrades_performance_substantially() {
    let luke = run_policy(StatePolicy::lukewarm());
    let warm = run_policy(StatePolicy::back_to_back());
    assert!(
        luke.cpi() > warm.cpi() * 1.4,
        "lukewarm CPI {} vs back-to-back {}",
        luke.cpi(),
        warm.cpi()
    );
}

#[test]
fn front_end_dominates_the_degradation() {
    let luke = run_policy(StatePolicy::lukewarm());
    let warm = run_policy(StatePolicy::back_to_back());
    let degradation = luke.topdown.total() - warm.topdown.total();
    let front_end = luke.topdown.front_end() - warm.topdown.front_end();
    assert!(
        front_end / degradation > 0.5,
        "front-end share of degradation = {}",
        front_end / degradation
    );
}

#[test]
fn warm_btb_only_affects_btb_misses() {
    let luke = run_policy(StatePolicy::lukewarm());
    let warm_btb = run_policy(StatePolicy::lukewarm_warm_btb());
    assert!(warm_btb.btb_misses < luke.btb_misses / 2, "BTB misses drop");
    // The caches are still cold, so L1-I misses stay in the same range.
    let ratio = warm_btb.l1i_misses as f64 / luke.l1i_misses as f64;
    assert!(ratio > 0.5, "L1-I misses should not collapse: ratio {ratio}");
}

#[test]
fn bim_randomization_causes_initial_mispredictions() {
    // Compare with the BTB warm in both cases so the conditional branches
    // are identified (an unidentified branch is never predicted, so the
    // plain lukewarm run under-counts CBP statistics by construction).
    let random_bim = run_policy(StatePolicy::lukewarm_warm_btb());
    let warm_bpu = run_policy(StatePolicy::lukewarm_warm_bpu());
    assert!(
        random_bim.initial_mispredictions > warm_bpu.initial_mispredictions * 2,
        "randomized BIM mispredicts first executions: {} vs {}",
        random_bim.initial_mispredictions,
        warm_bpu.initial_mispredictions
    );
}

#[test]
fn flush_is_complete() {
    // After a lukewarm flush, the next invocation's first fetches all go
    // off-chip (no residual cache state).
    let uarch = UarchConfig::ice_lake_like();
    let f = function();
    let mut m = Machine::new(&uarch, &FrontEndConfig::nl());
    run_invocation(&mut m, &f, 0);
    m.between_invocations();
    assert_eq!(m.hierarchy.l1i().occupancy(), 0);
    assert_eq!(m.hierarchy.l2().occupancy(), 0);
    assert_eq!(m.hierarchy.llc().occupancy(), 0);
    assert_eq!(m.btb.occupancy(), 0);
    assert!(m.cbp.tage().occupancy() < 1e-9);
}

#[test]
fn data_stall_model_responds_to_warm_data() {
    let luke = run_policy(StatePolicy::lukewarm());
    let mut warm_data = StatePolicy::lukewarm();
    warm_data.warm_data = true;
    let warm = run_policy(warm_data);
    assert!(
        luke.topdown.backend_bound > warm.topdown.backend_bound * 1.5,
        "cold data misses must show up as backend-bound cycles: {} vs {}",
        luke.topdown.backend_bound,
        warm.topdown.backend_bound
    );
}
