//! Record/replay integration: Ignite's metadata pipeline across full
//! engine invocations — record during one invocation, restore on the next.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::{Machine, PreparedFunction};
use ignite_engine::sim::run_invocation;
use ignite_uarch::UarchConfig;
use ignite_workloads::gen::{generate, GenParams};

fn function(name: &str) -> PreparedFunction {
    let mut p = GenParams::example(name);
    p.target_branches = 1_200;
    p.target_code_bytes = 48 * 1024;
    PreparedFunction::from_image(generate(&p), 0, 60_000)
}

#[test]
fn metadata_is_recorded_on_first_invocation() {
    let uarch = UarchConfig::ice_lake_like();
    let f = function("rr-record");
    let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
    let r = run_invocation(&mut m, &f, 0);
    assert!(r.traffic.record_metadata_bytes > 0, "first invocation records");
    assert_eq!(r.traffic.replay_metadata_bytes, 0, "nothing to replay yet");
    let ignite = m.ignite.as_ref().expect("ignite config");
    assert_eq!(ignite.os().containers(), 1);
    let stored = ignite.os().metadata_bytes(f.container).expect("metadata stored");
    assert!(stored <= ignite.config().metadata_budget_bytes, "metadata {stored} within the budget");
}

#[test]
fn compression_keeps_metadata_small() {
    // The paper's compressed records average well under the naive 96-bit
    // format; check bytes-per-entry on real recorded metadata.
    let uarch = UarchConfig::ice_lake_like();
    let f = function("rr-compress");
    let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
    run_invocation(&mut m, &f, 0);
    m.between_invocations();
    let r = run_invocation(&mut m, &f, 1); // replay streams the metadata back
    let entries_restored = m.btb.stats().replay_insertions.max(1);
    let bytes_per_entry = r.traffic.replay_metadata_bytes as f64 / entries_restored as f64;
    assert!(
        bytes_per_entry < 9.0,
        "compressed records must beat the 12-byte naive format: {bytes_per_entry}"
    );
}

#[test]
fn replay_restores_btb_bim_and_l2() {
    let uarch = UarchConfig::ice_lake_like();
    let f = function("rr-restore");
    let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
    let cold = run_invocation(&mut m, &f, 0);
    m.between_invocations();
    let warm = run_invocation(&mut m, &f, 1);
    assert!(
        warm.btb_misses * 3 < cold.btb_misses,
        "restored BTB: {} vs cold {}",
        warm.btb_misses,
        cold.btb_misses
    );
    assert!(warm.l1i_misses < cold.l1i_misses, "L2 restoration shortens instruction misses");
    assert!(warm.itlb_walks < cold.itlb_walks, "replay warms the ITLB");

    // BIM initialization: compare against an Ignite variant that restores
    // only the L2 and BTB. With the BIM left random, first executions of
    // restored branches mispredict far more often.
    let mut btb_only =
        FrontEndConfig::ignite().with_bim_policy(ignite_uarch::bimodal::BimInitPolicy::None);
    btb_only.name = "BTB only".to_string();
    let mut m2 = Machine::new(&uarch, &btb_only);
    run_invocation(&mut m2, &f, 0);
    m2.between_invocations();
    let no_bim = run_invocation(&mut m2, &f, 1);
    // Weakly-taken initialization covers a large share of initial
    // mispredictions (the paper reports 67%; branches that never entered
    // the record — not taken last invocation — remain uncovered).
    assert!(
        (warm.initial_mispredictions as f64) < no_bim.initial_mispredictions as f64 * 0.75,
        "BIM initialization covers initial mispredictions: {} vs {}",
        warm.initial_mispredictions,
        no_bim.initial_mispredictions
    );
}

#[test]
fn double_buffering_merges_divergent_entries() {
    // Record runs during replayed invocations too (§4.3). With replay
    // covering the established working set, the new recording holds only
    // the divergent branches — merged into the retained region, which
    // grows modestly and stays within budget.
    let uarch = UarchConfig::ice_lake_like();
    let f = function("rr-fresh");
    let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
    run_invocation(&mut m, &f, 0);
    let md0 = m.ignite.as_ref().unwrap().os().metadata_bytes(f.container).unwrap();
    m.between_invocations();
    run_invocation(&mut m, &f, 1);
    let ignite = m.ignite.as_ref().unwrap();
    let md1 = ignite.os().metadata_bytes(f.container).unwrap();
    assert!(md1 >= md0, "merge must not lose the base working set: {md1} vs {md0}");
    assert!(md1 < md0 + md0 / 2, "divergence is small, so growth is modest: {md1} vs {md0}");
    assert!(md1 <= ignite.config().metadata_budget_bytes + 16);
}

#[test]
fn containers_do_not_cross_pollinate() {
    let uarch = UarchConfig::ice_lake_like();
    let fa = function("rr-a");
    let mut fb = function("rr-b");
    fb.container = 1;
    let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
    run_invocation(&mut m, &fa, 0);
    m.between_invocations();
    // First invocation of container B must find no replay metadata.
    let rb = run_invocation(&mut m, &fb, 0);
    assert_eq!(rb.traffic.replay_metadata_bytes, 0);
    assert_eq!(m.ignite.as_ref().unwrap().os().containers(), 2);
}

#[test]
fn throttle_keeps_restored_backlog_bounded() {
    let uarch = UarchConfig::ice_lake_like();
    let f = function("rr-throttle");
    let mut m = Machine::new(&uarch, &FrontEndConfig::ignite());
    run_invocation(&mut m, &f, 0);
    m.between_invocations();
    run_invocation(&mut m, &f, 1);
    let threshold = m.ignite.as_ref().unwrap().config().replay.throttle_threshold;
    assert!(
        m.btb.restored_untouched() <= threshold + 8,
        "untouched restored entries {} exceed the throttle threshold {}",
        m.btb.restored_untouched(),
        threshold
    );
}
