//! Lukewarm-invocation study (paper §2.2, Fig. 1): CPI stacks of
//! interleaved vs back-to-back invocations for every suite function.
//!
//! ```text
//! cargo run --release -p ignite-harness --example lukewarm_study
//! ```

use ignite_engine::config::{FrontEndConfig, StatePolicy};
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_engine::topdown::Category;
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;

fn main() {
    let suite = Suite::paper_suite_scaled(0.25);
    let uarch = UarchConfig::ice_lake_like();
    let opts = RunOptions::quick();
    let lukewarm = FrontEndConfig::nl();
    let warm = FrontEndConfig::nl().with_policy("(warm)", StatePolicy::back_to_back());

    println!(
        "{:<9} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>7} {:>9}",
        "function", "CPI", "ret", "fetch", "badspec", "backend", "warmCPI", "slowdown"
    );
    let mut ratios = Vec::new();
    for (i, f) in suite.functions().iter().enumerate() {
        let prepared = PreparedFunction::from_suite(f, i as u64);
        let luke = run_function(&uarch, &lukewarm, &prepared, opts);
        let btb = run_function(&uarch, &warm, &prepared, opts);
        let n = luke.instructions as f64;
        let ratio = luke.cpi() / btb.cpi();
        ratios.push(ratio);
        println!(
            "{:<9} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} | {:>7.3} {:>8.0}%",
            f.profile.abbr,
            luke.cpi(),
            luke.topdown.get(Category::Retiring) / n,
            luke.topdown.get(Category::FetchBound) / n,
            luke.topdown.get(Category::BadSpeculation) / n,
            luke.topdown.get(Category::BackendBound) / n,
            btb.cpi(),
            (ratio - 1.0) * 100.0,
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\ninterleaving slows execution by {:.0}% on average (paper: 162% on hardware)",
        (mean - 1.0) * 100.0
    );
}
