//! Every front-end configuration, head to head, over the whole suite
//! (a compact rendition of the paper's Figs. 3, 8 and 12 in one table).
//!
//! ```text
//! cargo run --release -p ignite-harness --example prefetcher_shootout
//! ```

use ignite_engine::config::FrontEndConfig;
use ignite_engine::protocol::RunOptions;
use ignite_harness::Harness;

fn main() {
    let harness = Harness::new(0.25, RunOptions::quick());
    let configs = [
        FrontEndConfig::nl(),
        FrontEndConfig::fdp(),
        FrontEndConfig::jukebox(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::confluence(),
        FrontEndConfig::confluence_ignite(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_boomerang(),
        FrontEndConfig::ignite_tage(),
        FrontEndConfig::ideal(),
    ];

    let baseline = harness.run_config(&configs[0]);
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "configuration", "speedup", "CPI", "L1I MPKI", "BTB MPKI", "CBP MPKI"
    );
    for fe in &configs {
        let results = harness.run_config(fe);
        let n = results.len() as f64;
        let speedup =
            baseline.iter().zip(&results).map(|(b, r)| b.cpi() / r.cpi()).sum::<f64>() / n;
        let mean = |f: &dyn Fn(&ignite_engine::InvocationResult) -> f64| {
            results.iter().map(f).sum::<f64>() / n
        };
        println!(
            "{:<22} {:>8.3} {:>9.3} {:>9.1} {:>9.1} {:>9.1}",
            fe.name,
            speedup,
            mean(&|r| r.cpi()),
            mean(&|r| r.l1i_mpki()),
            mean(&|r| r.btb_mpki()),
            mean(&|r| r.cbp_mpki()),
        );
    }
    println!(
        "\npaper means: Boomerang 1.12, Jukebox 1.16, Boomerang+JB 1.20, \
         Ignite 1.43, Ignite+TAGE 1.50, Ideal 1.61"
    );
}
