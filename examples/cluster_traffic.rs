//! Skewed serverless traffic over a small fleet, with a bounded Ignite
//! metadata store: how capacity pressure turns lukewarm starts cold.
//!
//! ```text
//! cargo run --release -p ignite-harness --example cluster_traffic
//! ```
//!
//! Runs the same Zipf(1.0) Poisson arrival trace twice — once with a
//! roomy metadata store and once with a tight one — and prints the
//! per-function tail latencies side by side. Popular functions stay
//! resident under pressure; the long tail loses its metadata and pays
//! lukewarm-start latency again.

use ignite_cluster::{ClusterConfig, ClusterOutcome, ClusterSim};

fn run_with_capacity(capacity: usize) -> ClusterOutcome {
    let mut cfg = ClusterConfig::default();
    cfg.arrival.horizon_cycles = 2_000_000;
    cfg.store.capacity_bytes = capacity;
    ClusterSim::new(cfg).run()
}

fn main() {
    let roomy_bytes = 256 * 1024;
    let tight_bytes = 4 * 1024;
    let roomy = run_with_capacity(roomy_bytes);
    let tight = run_with_capacity(tight_bytes);

    println!(
        "4 cores, Zipf(1.0) Poisson arrivals, Ignite front-end; store {} KiB vs {} KiB\n",
        roomy_bytes / 1024,
        tight_bytes / 1024
    );
    println!(
        "{:<6} {:>6} {:>11} {:>11} {:>9} {:>9} {:>10} {:>10}",
        "func", "invocs", "p95(roomy)", "p95(tight)", "hit(r)", "hit(t)", "cold(r)", "cold(t)"
    );
    for (a, b) in roomy.functions.iter().zip(&tight.functions) {
        println!(
            "{:<6} {:>6} {:>11} {:>11} {:>9.3} {:>9.3} {:>10.3} {:>10.3}",
            a.abbr,
            a.invocations,
            a.p95_latency,
            b.p95_latency,
            a.metadata_hit_rate(),
            b.metadata_hit_rate(),
            a.mean_cold_fraction,
            b.mean_cold_fraction,
        );
    }

    for (label, out) in [("roomy", &roomy), ("tight", &tight)] {
        println!(
            "\n[{label}] {} invocations | store hit rate {:.3} ({} hits / {} misses, \
             {} evictions) | peak footprint {} bytes | mean latency {:.0} cycles \
             (p95 {}) | mean core utilization {:.3}",
            out.invocations,
            out.store.hit_rate(),
            out.store.hits,
            out.store.misses,
            out.store.evictions,
            out.peak_footprint_bytes,
            out.mean_latency,
            out.p95_latency,
            out.mean_utilization(),
        );
    }
    println!(
        "\nThe tight store evicts the tail's metadata between recurrences: its hit \
         rate collapses while the Zipf head stays pinned by recency, so tail p95 \
         rises toward a full cold start."
    );
}
