//! Bring your own workload: define a custom synthetic function, inspect
//! its working sets, and measure how much Ignite helps it.
//!
//! ```text
//! cargo run --release -p ignite-harness --example custom_function
//! ```
//!
//! Demonstrates the lower-level APIs: `GenParams` → `CodeImage` →
//! `TraceWalker` / `measure_working_set` → `PreparedFunction` → engine.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::addr::Addr;
use ignite_uarch::UarchConfig;
use ignite_workloads::gen::{generate, GenParams};
use ignite_workloads::trace::measure_working_set;

fn main() {
    // An interpreter-flavoured function: branch-dense with indirect
    // dispatch, ~120 KiB of hot code.
    let params = GenParams {
        name: "my-interpreter".to_string(),
        seed: 42,
        base: Addr::new(0x0050_0000),
        target_code_bytes: 120 * 1024,
        target_branches: 5_000,
        indirect_fraction: 0.05,
        call_fraction: 0.10,
        cond_fraction: 0.62,
        backward_fraction: 0.25,
        high_bias_fraction: 0.80,
        blocks_per_function: 48,
        dead_code_fraction: 0.5,
    };
    let image = generate(&params);
    println!(
        "image '{}': {} KiB total code ({} KiB live), {} blocks, {} functions",
        image.name(),
        image.code_bytes() / 1024,
        image.live_code_bytes() / 1024,
        image.static_branches(),
        image.functions().len(),
    );

    let invocation_instrs = 150_000;
    let ws = measure_working_set(&image, 0, invocation_instrs);
    println!(
        "one invocation touches {} KiB of instructions and {} distinct taken branches\n",
        ws.instruction_bytes / 1024,
        ws.btb_entries,
    );

    let prepared = PreparedFunction::from_image(image, 0, invocation_instrs);
    let uarch = UarchConfig::ice_lake_like();
    let opts = RunOptions::default();
    for fe in [
        FrontEndConfig::nl(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ideal(),
    ] {
        let r = run_function(&uarch, &fe, &prepared, opts);
        println!(
            "{:<16} CPI {:>6.3}  L1I {:>5.1}  BTB {:>5.1}  CBP {:>5.1} MPKI",
            fe.name,
            r.cpi(),
            r.l1i_mpki(),
            r.btb_mpki(),
            r.cbp_mpki(),
        );
    }
}
