//! Quickstart: simulate one serverless function with and without Ignite.
//!
//! ```text
//! cargo run --release -p ignite-harness --example quickstart
//! ```
//!
//! Builds one function from the paper suite, runs it under the lukewarm
//! protocol with the next-line baseline and with Ignite, and prints the
//! headline comparison.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;

fn main() {
    // A scaled-down suite keeps the example fast; pass 1.0 for paper scale.
    let suite = Suite::paper_suite_scaled(0.25);
    let function = suite.by_abbr("Auth-N").expect("Auth-N is in the suite");
    println!(
        "function {} ({}): {} KiB code, {} dynamic instructions/invocation\n",
        function.profile.abbr,
        function.profile.language,
        function.image.code_bytes() / 1024,
        function.profile.invocation_instrs,
    );

    let prepared = PreparedFunction::from_suite(function, 0);
    let uarch = UarchConfig::ice_lake_like();
    let opts = RunOptions::default();

    let baseline = run_function(&uarch, &FrontEndConfig::nl(), &prepared, opts);
    let ignite = run_function(&uarch, &FrontEndConfig::ignite(), &prepared, opts);

    println!("{:<22} {:>10} {:>10}", "", "NL", "Ignite");
    println!("{:<22} {:>10.3} {:>10.3}", "CPI", baseline.cpi(), ignite.cpi());
    println!("{:<22} {:>10.1} {:>10.1}", "L1-I MPKI", baseline.l1i_mpki(), ignite.l1i_mpki());
    println!("{:<22} {:>10.1} {:>10.1}", "BTB MPKI", baseline.btb_mpki(), ignite.btb_mpki());
    println!("{:<22} {:>10.1} {:>10.1}", "CBP MPKI", baseline.cbp_mpki(), ignite.cbp_mpki());
    println!("\nIgnite speedup over the next-line baseline: {:.2}x", baseline.cpi() / ignite.cpi());
}
